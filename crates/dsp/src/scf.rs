//! The Discrete Spectral Correlation Function (DSCF) of eq. 3.
//!
//! For block spectra `X_{n,v}` (eq. 2) the DSCF is
//!
//! ```text
//! S_f^a = (1/N) · Σ_{n=0..N-1}  X_{n, f+a} · conj(X_{n, f-a})
//! ```
//!
//! with the spectral frequency `f` and the frequency offset `a` both ranging
//! over `-M ..= M` (the paper uses `M = 63` for 256-point spectra, i.e.
//! `P = F = 127`). Spectral indices are *centred*: index `v` refers to FFT
//! bin `v mod K`.
//!
//! [`dscf_reference`] is the golden model implemented directly from eq. 3;
//! it is what the mapped/folded/simulated implementations in the other
//! crates are checked against. [`ScfEngine`] is the fast software kernel:
//! table-driven, symmetry-halved and allocation-reusing, bit-identical to
//! the golden model.

use crate::complex::Cplx;
use crate::error::DspError;
use crate::fft::{block_spectrum, block_spectrum_into, FftPlan};
use crate::window::Window;
use std::cell::RefCell;
use std::fmt;
use std::sync::OnceLock;

/// Cached handles to the DSCF stage histograms ([`ScfEngine`] is
/// `Clone + serde`-derived, so the handles live at module scope rather
/// than as fields).
fn spectra_ns() -> &'static cfd_telemetry::Histogram {
    static SPECTRA_NS: OnceLock<cfd_telemetry::Histogram> = OnceLock::new();
    SPECTRA_NS.get_or_init(|| cfd_telemetry::histogram("dsp.scf.spectra_ns"))
}

fn accumulate_ns() -> &'static cfd_telemetry::Histogram {
    static ACCUMULATE_NS: OnceLock<cfd_telemetry::Histogram> = OnceLock::new();
    ACCUMULATE_NS.get_or_init(|| cfd_telemetry::histogram("dsp.scf.accumulate_ns"))
}

/// Contiguous operand runs executed per accumulation call (always-live, like
/// the cache counters): `segments-per-grid × blocks` per call. A row splits
/// into more than one run only where an operand wraps past bin `K−1`, so
/// this counter exposes how contiguous the unit-stride decomposition is.
fn segment_runs() -> &'static cfd_telemetry::Counter {
    static SEGMENT_RUNS: OnceLock<cfd_telemetry::Counter> = OnceLock::new();
    SEGMENT_RUNS.get_or_init(|| cfd_telemetry::counter("dsp.scf.segment_runs"))
}

/// Parameters of a DSCF evaluation.
///
/// # Examples
///
/// ```
/// use cfd_dsp::scf::ScfParams;
///
/// // The paper's configuration: 256-point spectra, f and a in -63..=63.
/// let params = ScfParams::paper_256();
/// assert_eq!(params.grid_size(), 127);
/// assert_eq!(params.total_multiplications(), 127 * 127);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScfParams {
    /// FFT length `K` (one block of samples).
    pub fft_len: usize,
    /// Maximum absolute value `M` of the frequency index `f` and offset `a`.
    pub max_offset: usize,
    /// Number of blocks `N` averaged over (the integration length).
    pub num_blocks: usize,
    /// Distance in samples between the starts of consecutive blocks
    /// (defaults to `fft_len`, i.e. non-overlapping blocks).
    pub block_stride: usize,
    /// Analysis window applied to each block.
    pub window: Window,
}

impl ScfParams {
    /// Creates parameters with the common defaults (rectangular window,
    /// non-overlapping blocks).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `fft_len` is zero, if
    /// `num_blocks` is zero, or if `2·max_offset >= fft_len` (the indices
    /// `f±a` would wrap past the Nyquist zone).
    pub fn new(fft_len: usize, max_offset: usize, num_blocks: usize) -> Result<Self, DspError> {
        let params = ScfParams {
            fft_len,
            max_offset,
            num_blocks,
            block_stride: fft_len,
            window: Window::Rectangular,
        };
        params.validate()?;
        Ok(params)
    }

    /// The paper's evaluation configuration: 256-point spectra with
    /// `f, a ∈ -63..=63` (127×127 DSCF) averaged over `num_blocks` blocks.
    pub fn paper_256_with_blocks(num_blocks: usize) -> Self {
        ScfParams::new(256, 63, num_blocks).expect("paper configuration is valid")
    }

    /// The paper's evaluation configuration with a single integration step.
    pub fn paper_256() -> Self {
        Self::paper_256_with_blocks(1)
    }

    /// Sets the analysis window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Sets the block stride (overlapping blocks when `stride < fft_len`).
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.block_stride = stride;
        self
    }

    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// See [`ScfParams::new`].
    pub fn validate(&self) -> Result<(), DspError> {
        if self.fft_len == 0 {
            return Err(DspError::InvalidParameter {
                name: "fft_len",
                message: "must be at least 1".into(),
            });
        }
        // Spectral indices are mapped through `centred_bin`'s i32 domain and
        // the engine's u32 segment tables; a wider FFT cannot be indexed.
        if self.fft_len > i32::MAX as usize {
            return Err(DspError::InvalidParameter {
                name: "fft_len",
                message: format!(
                    "{} exceeds the 32-bit spectral index domain ({})",
                    self.fft_len,
                    i32::MAX
                ),
            });
        }
        if self.num_blocks == 0 {
            return Err(DspError::InvalidParameter {
                name: "num_blocks",
                message: "must be at least 1".into(),
            });
        }
        if self.block_stride == 0 {
            return Err(DspError::InvalidParameter {
                name: "block_stride",
                message: "must be at least 1".into(),
            });
        }
        // Checked doubling: `2 * max_offset` must not silently wrap (a
        // debug-build panic and a release-build wraparound are both wrong
        // answers for a parameter error).
        let doubled = self
            .max_offset
            .checked_mul(2)
            .ok_or_else(|| DspError::InvalidParameter {
                name: "max_offset",
                message: format!(
                    "2*max_offset overflows usize (max_offset = {})",
                    self.max_offset
                ),
            })?;
        if doubled >= self.fft_len {
            return Err(DspError::InvalidParameter {
                name: "max_offset",
                message: format!(
                    "2*max_offset ({doubled}) must be smaller than fft_len ({})",
                    self.fft_len
                ),
            });
        }
        Ok(())
    }

    /// Number of points along each of the `f` and `a` axes, `P = 2M+1`.
    pub fn grid_size(&self) -> usize {
        2 * self.max_offset + 1
    }

    /// Total number of `(f, a)` points, i.e. complex multiply–accumulate
    /// operations per integration step (`P·F`; 16 129 for the paper's
    /// 127×127 grid — note the paper's per-core count 4 064 is `T·F` with
    /// `T = 32`).
    pub fn total_multiplications(&self) -> usize {
        self.grid_size() * self.grid_size()
    }

    /// Number of samples needed to evaluate `num_blocks` blocks.
    pub fn samples_needed(&self) -> usize {
        (self.num_blocks - 1) * self.block_stride + self.fft_len
    }
}

/// A dense `(f, a)` matrix of DSCF values.
///
/// Rows are indexed by the frequency `f ∈ -M..=M`, columns by the offset
/// `a ∈ -M..=M`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScfMatrix {
    max_offset: usize,
    values: Vec<Cplx>,
}

impl ScfMatrix {
    /// Creates a zero-filled matrix for indices `-max_offset ..= max_offset`.
    pub fn zeros(max_offset: usize) -> Self {
        let p = 2 * max_offset + 1;
        ScfMatrix {
            max_offset,
            values: vec![Cplx::ZERO; p * p],
        }
    }

    /// The maximum absolute index `M`.
    pub fn max_offset(&self) -> usize {
        self.max_offset
    }

    /// Number of points along each axis, `P = 2M+1`.
    pub fn grid_size(&self) -> usize {
        2 * self.max_offset + 1
    }

    fn flat_index(&self, f: i32, a: i32) -> Option<usize> {
        let m = self.max_offset as i32;
        if f < -m || f > m || a < -m || a > m {
            return None;
        }
        let row = (f + m) as usize;
        let col = (a + m) as usize;
        Some(row * self.grid_size() + col)
    }

    /// Returns `S_f^a`, or `None` if the indices are out of range.
    pub fn get(&self, f: i32, a: i32) -> Option<Cplx> {
        self.flat_index(f, a).map(|i| self.values[i])
    }

    /// Returns `S_f^a`.
    ///
    /// # Panics
    ///
    /// Panics if `f` or `a` lies outside `-M ..= M`.
    pub fn at(&self, f: i32, a: i32) -> Cplx {
        self.get(f, a).unwrap_or_else(|| {
            panic!(
                "index (f={f}, a={a}) outside the ±{} DSCF grid",
                self.max_offset
            )
        })
    }

    /// Sets `S_f^a`.
    ///
    /// # Panics
    ///
    /// Panics if `f` or `a` lies outside `-M ..= M`.
    pub fn set(&mut self, f: i32, a: i32, value: Cplx) {
        let idx = self.flat_index(f, a).unwrap_or_else(|| {
            panic!(
                "index (f={f}, a={a}) outside the ±{} DSCF grid",
                self.max_offset
            )
        });
        self.values[idx] = value;
    }

    /// Adds `value` to `S_f^a` (accumulation over `n`).
    ///
    /// # Panics
    ///
    /// Panics if `f` or `a` lies outside `-M ..= M`.
    pub fn accumulate(&mut self, f: i32, a: i32, value: Cplx) {
        let idx = self.flat_index(f, a).unwrap_or_else(|| {
            panic!(
                "index (f={f}, a={a}) outside the ±{} DSCF grid",
                self.max_offset
            )
        });
        self.values[idx] += value;
    }

    /// Scales every entry by `factor` (the `1/N` normalisation).
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v = *v * factor;
        }
    }

    /// The flat row-major backing buffer: rows are frequencies `f` (index
    /// `f + M`), columns are offsets `a` (index `a + M`), so
    /// `S_f^a = as_slice()[(f + M)·P + (a + M)]`.
    pub fn as_slice(&self) -> &[Cplx] {
        &self.values
    }

    /// Mutable access to the flat row-major buffer (same layout as
    /// [`ScfMatrix::as_slice`]) — the allocation-free write path for bulk
    /// producers such as the tiled SoC's result gather.
    pub fn as_mut_slice(&mut self) -> &mut [Cplx] {
        &mut self.values
    }

    /// Iterates over `(f, a, S_f^a)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (i32, i32, Cplx)> + '_ {
        let m = self.max_offset as i32;
        let p = self.grid_size();
        self.values.iter().enumerate().map(move |(i, &v)| {
            let f = (i / p) as i32 - m;
            let a = (i % p) as i32 - m;
            (f, a, v)
        })
    }

    /// Maximum absolute difference to another matrix of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices have different `max_offset`.
    pub fn max_abs_difference(&self, other: &ScfMatrix) -> f64 {
        assert_eq!(
            self.max_offset, other.max_offset,
            "cannot compare DSCF matrices of different sizes"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest magnitude over the whole grid.
    pub fn max_magnitude(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// The cyclic-domain profile: for each offset `a`, the maximum of
    /// `|S_f^a|` over all `f`. Element `[a + M]` of the returned vector
    /// corresponds to offset `a`.
    ///
    /// Cyclostationary signals show peaks at non-zero `a`; stationary noise
    /// concentrates its energy at `a = 0`.
    pub fn cyclic_profile(&self) -> Vec<f64> {
        let mut profile = Vec::new();
        self.cyclic_profile_into(&mut profile);
        profile
    }

    /// [`ScfMatrix::cyclic_profile`] into a caller-owned buffer, resized to
    /// the grid size — the allocation-free form the streaming hot path
    /// uses.
    ///
    /// The scan maximises `|S|²` and takes one square root per column at
    /// the end; `sqrt` is monotone and correctly rounded, so the result is
    /// the square root of the largest squared magnitude — one rounding of
    /// the true `|S|` rather than `hypot`'s, at a third of the cost.
    pub fn cyclic_profile_into(&self, profile: &mut Vec<f64>) {
        // One pass over the flat row-major buffer (rows = f, columns = a)
        // instead of P² bounds-checked `at()` lookups.
        let p = self.grid_size();
        profile.clear();
        profile.resize(p, 0.0);
        for row in self.values.chunks_exact(p) {
            for (best, value) in profile.iter_mut().zip(row) {
                let magnitude = value.norm_sqr();
                if magnitude > *best {
                    *best = magnitude;
                }
            }
        }
        for best in profile.iter_mut() {
            *best = best.sqrt();
        }
    }

    /// The power spectral density estimate along `a = 0`
    /// (`S_f^0 = (1/N)·Σ|X_{n,f}|²`), indexed by `f + M`.
    pub fn psd(&self) -> Vec<f64> {
        // The a = 0 column is every grid_size()-th element of the flat
        // buffer starting at column offset M.
        self.values
            .iter()
            .skip(self.max_offset)
            .step_by(self.grid_size())
            .map(|v| v.abs())
            .collect()
    }
}

impl fmt::Display for ScfMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ScfMatrix {{ {}x{} points, f,a in -{}..={}, peak |S| = {:.3e} }}",
            self.grid_size(),
            self.grid_size(),
            self.max_offset,
            self.max_offset,
            self.max_magnitude()
        )
    }
}

/// Computes the block spectra `X_{n,v}` of eq. 2 for all `num_blocks` blocks.
///
/// The result is a `num_blocks × fft_len` matrix (outer Vec over `n`).
///
/// # Errors
///
/// Propagates parameter and length errors from [`block_spectrum`] and
/// [`ScfParams::validate`].
pub fn block_spectra(signal: &[Cplx], params: &ScfParams) -> Result<Vec<Vec<Cplx>>, DspError> {
    params.validate()?;
    if signal.len() < params.samples_needed() {
        return Err(DspError::InsufficientSamples {
            needed: params.samples_needed(),
            available: signal.len(),
        });
    }
    (0..params.num_blocks)
        .map(|n| {
            block_spectrum(
                signal,
                n * params.block_stride,
                params.fft_len,
                params.window,
            )
        })
        .collect()
}

/// Looks up the centred spectral index `v` (possibly negative) in an FFT
/// block of length `k`: index `v` maps to bin `v mod k`.
#[inline]
pub fn centred_bin(v: i32, k: usize) -> usize {
    let k = k as i32;
    (((v % k) + k) % k) as usize
}

/// Reference implementation of the DSCF, directly from eq. 3.
///
/// This is the golden model that the mapped (systolic / folded / Montium /
/// tiled-SoC) implementations are validated against.
///
/// # Errors
///
/// * [`DspError::InvalidParameter`] for invalid parameters,
/// * [`DspError::InsufficientSamples`] if the signal is too short,
/// * [`DspError::NotPowerOfTwo`] if `fft_len` is not a power of two.
pub fn dscf_reference(signal: &[Cplx], params: &ScfParams) -> Result<ScfMatrix, DspError> {
    let spectra = block_spectra(signal, params)?;
    Ok(dscf_from_spectra(&spectra, params))
}

/// Evaluates eq. 3 given precomputed block spectra.
///
/// Useful when the spectra come from a different (e.g. fixed-point or
/// simulated) FFT implementation.
///
/// # Panics
///
/// Panics if any block is shorter than `params.fft_len`.
pub fn dscf_from_spectra(spectra: &[Vec<Cplx>], params: &ScfParams) -> ScfMatrix {
    let m = params.max_offset as i32;
    let k = params.fft_len;
    let mut matrix = ScfMatrix::zeros(params.max_offset);
    for block in spectra {
        assert!(
            block.len() >= k,
            "block spectrum shorter ({}) than fft_len ({k})",
            block.len()
        );
        for f in -m..=m {
            for a in -m..=m {
                let x_plus = block[centred_bin(f + a, k)];
                let x_minus = block[centred_bin(f - a, k)];
                matrix.accumulate(f, a, x_plus * x_minus.conj());
            }
        }
    }
    if !spectra.is_empty() {
        matrix.scale(1.0 / spectra.len() as f64);
    }
    matrix
}

/// One contiguous run of a half-grid row's accumulation.
///
/// For `len` consecutive offsets starting at `a = out`, the direct operand
/// reads `block[plus + i]` and the conjugated operand reads `rev[rev + i]`,
/// where `rev` is the index-reversed block (`rev[t] = block[(K−t) mod K]`) —
/// both forward unit-stride. Segments never cross a wrap of either operand,
/// so the slices they window are plain contiguous windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowSegment {
    /// First offset `a` of the run (column relative to `a = 0`).
    out: u32,
    /// Number of consecutive offsets in the run.
    len: u32,
    /// Start of the direct-operand window: `plus + i = (bin(f) + a) mod K`.
    plus: u32,
    /// Start of the conjugate-operand window in the reversed block:
    /// `rev + i = (bin(−f) + a) mod K`.
    rev: u32,
}

/// Reusable per-thread staging of the accumulation kernel: the block
/// spectra (direct and index-reversed) and one row-band of accumulators,
/// all split into separate re/im planes so the segment loops are pure
/// vertical `f64` operations the vectorised band kernel turns into packed
/// loads and adds. Thread-local rather than per-engine because
/// [`ScfEngine`] is shared immutably across sweep workers.
#[derive(Default)]
struct ScfScratch {
    plus_re: Vec<f64>,
    plus_im: Vec<f64>,
    rev_re: Vec<f64>,
    rev_im: Vec<f64>,
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
    row_buf: Vec<Cplx>,
}

thread_local! {
    static SCF_SCRATCH: RefCell<ScfScratch> = RefCell::new(ScfScratch::default());
}

/// The four operand windows (direct re/im, reversed re/im) of one block
/// over one segment, each `len` values long.
type SegOperands<'a> = (&'a [f64], &'a [f64], &'a [f64], &'a [f64]);

/// Slices block `b`'s operand windows for a segment out of the staged
/// planes.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn seg_operands<'a>(
    plus_re: &'a [f64],
    plus_im: &'a [f64],
    rev_re: &'a [f64],
    rev_im: &'a [f64],
    b: usize,
    k: usize,
    seg: &RowSegment,
) -> SegOperands<'a> {
    let len = seg.len as usize;
    let plus = b * k + seg.plus as usize;
    let rev = b * k + seg.rev as usize;
    (
        &plus_re[plus..][..len],
        &plus_im[plus..][..len],
        &rev_re[rev..][..len],
        &rev_im[rev..][..len],
    )
}

/// One unit-stride pass over a segment, accumulating `B` blocks per point
/// with the accumulator held in registers across the unrolled block chain
/// (the inner loop over a const-length array is fully unrolled). The
/// per-point expression is the reference's product — four products, two
/// single-rounded sums per block, chained onto the accumulator in block
/// order — so the summation tree is exactly the one [`dscf_reference`]
/// builds (`f64::mul_add` was measured here in PR 4 and rejected: without
/// FMA in the target feature set it lowers to a libm call per point, 6×
/// slower, and with FMA it would change the rounding).
#[inline(always)]
fn seg_pass<const B: usize>(ar: &mut [f64], ai: &mut [f64], ops: &[SegOperands<'_>; B]) {
    let len = ar.len();
    let ai = &mut ai[..len];
    for i in 0..len {
        let mut re = ar[i];
        let mut im = ai[i];
        for &(xr, xi, yr, yi) in ops {
            re += xr[i] * yr[i] + xi[i] * yi[i];
            im += xi[i] * yr[i] - xr[i] * yi[i];
        }
        ar[i] = re;
        ai[i] = im;
    }
}

/// [`seg_pass`] for the first blocks of a segment: the accumulator starts
/// from the literal `0.0` instead of a pre-zeroed slab, so the band needs
/// no clearing memset and the first pass issues no accumulator loads. The
/// chain `0.0 + t₀ + …` is exactly what the zero-filled slab would have
/// computed (the compiler cannot and does not fold `0.0 + t₀` — it would
/// change the sign of a `-0.0` term — so the rounding tree is unchanged).
#[inline(always)]
fn seg_pass_init<const B: usize>(ar: &mut [f64], ai: &mut [f64], ops: &[SegOperands<'_>; B]) {
    let len = ar.len();
    let ai = &mut ai[..len];
    for i in 0..len {
        let mut re = 0.0f64;
        let mut im = 0.0f64;
        for &(xr, xi, yr, yi) in ops {
            re += xr[i] * yr[i] + xi[i] * yi[i];
            im += xi[i] * yr[i] - xr[i] * yi[i];
        }
        ar[i] = re;
        ai[i] = im;
    }
}

/// [`seg_pass`] with the sign flipped: removes `B` blocks' contributions
/// from the accumulator. Per block the subtracted term is the same
/// four-product, two-single-rounded-sum expression [`seg_pass`] adds, so
/// retiring a block subtracts exactly the value (to the last bit) that
/// adding it contributed; the residual error of an add-then-retire cycle
/// is the associativity rounding of `(acc + t) − t` alone, which the
/// streaming layer bounds with periodic exact refreshes.
#[inline(always)]
fn seg_pass_sub<const B: usize>(ar: &mut [f64], ai: &mut [f64], ops: &[SegOperands<'_>; B]) {
    let len = ar.len();
    let ai = &mut ai[..len];
    for i in 0..len {
        let mut re = ar[i];
        let mut im = ai[i];
        for &(xr, xi, yr, yi) in ops {
            re -= xr[i] * yr[i] + xi[i] * yi[i];
            im -= xi[i] * yr[i] - xr[i] * yi[i];
        }
        ar[i] = re;
        ai[i] = im;
    }
}

/// Stages `n` block spectra into the scratch's split re/im operand planes:
/// the direct copy and the index-reversed copy `rev[t] = block[(K−t) mod
/// K]`, `k` bins per block. Shared by the batch accumulation and the
/// incremental single-block / window passes, so every path reads operands
/// with exactly the same staged values.
fn stage_operand_planes<'a>(
    scratch: &mut ScfScratch,
    k: usize,
    blocks: impl ExactSizeIterator<Item = &'a [Cplx]>,
) {
    let n = blocks.len();
    let ScfScratch {
        plus_re,
        plus_im,
        rev_re,
        rev_im,
        ..
    } = scratch;
    for plane in [&mut *plus_re, &mut *plus_im, &mut *rev_re, &mut *rev_im] {
        plane.clear();
        plane.resize(n * k, 0.0);
    }
    for (b, block) in blocks.enumerate() {
        let block = &block[..k];
        let base = b * k;
        for (t, value) in block.iter().enumerate() {
            plus_re[base + t] = value.re;
            plus_im[base + t] = value.im;
        }
        rev_re[base] = block[0].re;
        rev_im[base] = block[0].im;
        for t in 1..k {
            rev_re[base + t] = block[k - t].re;
            rev_im[base + t] = block[k - t].im;
        }
    }
}

/// One row-band of the segment accumulation: every row of the band runs
/// its segments as forward unit-stride passes into the band-local
/// accumulator planes (`(row − band.start)·half + a`), with the blocks
/// fused innermost — four per pass — so each accumulator value is loaded
/// and stored once per run instead of once per block. Per accumulator the
/// blocks still arrive in ascending order (4-chains, then a 2-chain, then
/// a single), so the result is bit-identical to the block-at-a-time loop.
/// Shared by the generic and the AVX2-dispatched kernels below.
#[inline(always)]
fn accumulate_band_body(
    segments: &[RowSegment],
    row_bounds: &[u32],
    band: std::ops::Range<usize>,
    half: usize,
    k: usize,
    scratch: &mut ScfScratch,
) {
    let ScfScratch {
        plus_re,
        plus_im,
        rev_re,
        rev_im,
        acc_re,
        acc_im,
        ..
    } = scratch;
    let n = plus_re.len() / k;
    for row in band.clone() {
        let acc_base = (row - band.start) * half;
        let bounds = row_bounds[row] as usize..row_bounds[row + 1] as usize;
        for seg in &segments[bounds] {
            let len = seg.len as usize;
            let ar = &mut acc_re[acc_base + seg.out as usize..][..len];
            let ai = &mut acc_im[acc_base + seg.out as usize..][..len];
            // The first pass writes (`seg_pass_init`), the rest accumulate;
            // per accumulator the blocks arrive strictly ascending.
            let mut b: usize;
            if n >= 4 {
                let ops = [
                    seg_operands(plus_re, plus_im, rev_re, rev_im, 0, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, 1, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, 2, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, 3, k, seg),
                ];
                seg_pass_init(ar, ai, &ops);
                b = 4;
            } else if n >= 2 {
                let ops = [
                    seg_operands(plus_re, plus_im, rev_re, rev_im, 0, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, 1, k, seg),
                ];
                seg_pass_init(ar, ai, &ops);
                b = 2;
            } else {
                let ops = [seg_operands(plus_re, plus_im, rev_re, rev_im, 0, k, seg)];
                seg_pass_init(ar, ai, &ops);
                b = 1;
            }
            while b + 4 <= n {
                let ops = [
                    seg_operands(plus_re, plus_im, rev_re, rev_im, b, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, b + 1, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, b + 2, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, b + 3, k, seg),
                ];
                seg_pass(ar, ai, &ops);
                b += 4;
            }
            if b + 2 <= n {
                let ops = [
                    seg_operands(plus_re, plus_im, rev_re, rev_im, b, k, seg),
                    seg_operands(plus_re, plus_im, rev_re, rev_im, b + 1, k, seg),
                ];
                seg_pass(ar, ai, &ops);
                b += 2;
            }
            if b < n {
                let ops = [seg_operands(plus_re, plus_im, rev_re, rev_im, b, k, seg)];
                seg_pass(ar, ai, &ops);
            }
        }
    }
}

fn accumulate_band_generic(
    segments: &[RowSegment],
    row_bounds: &[u32],
    band: std::ops::Range<usize>,
    half: usize,
    k: usize,
    scratch: &mut ScfScratch,
) {
    accumulate_band_body(segments, row_bounds, band, half, k, scratch);
}

/// The same band kernel compiled for AVX2 (4-wide `f64` lanes instead of
/// SSE2's 2). Only `avx2` is enabled — not `fma` — so the generated code
/// performs exactly the IEEE multiplies and adds of the generic kernel and
/// the results stay bit-identical; the dispatch is purely a throughput
/// choice made at run time.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn accumulate_band_avx2(
    segments: &[RowSegment],
    row_bounds: &[u32],
    band: std::ops::Range<usize>,
    half: usize,
    k: usize,
    scratch: &mut ScfScratch,
) {
    accumulate_band_body(segments, row_bounds, band, half, k, scratch);
}

/// The same band kernel compiled for AVX-512 (8-wide `f64` lanes). Like
/// the AVX2 copy this cannot change the arithmetic: rustc emits plain
/// IEEE multiplies and adds with no fast-math flags, so the backend is
/// not allowed to contract them into FMAs no matter which instructions
/// the feature set offers — wider registers only.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn accumulate_band_avx512(
    segments: &[RowSegment],
    row_bounds: &[u32],
    band: std::ops::Range<usize>,
    half: usize,
    k: usize,
    scratch: &mut ScfScratch,
) {
    accumulate_band_body(segments, row_bounds, band, half, k, scratch);
}

/// The widest vector tier the host supports (checked once per call site;
/// the feature-detection macro caches the CPUID probe).
#[derive(Clone, Copy, PartialEq, Eq)]
enum VectorTier {
    Generic,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn vector_tier() -> VectorTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return VectorTier::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return VectorTier::Avx2;
        }
    }
    VectorTier::Generic
}

/// Normalises and mirrors one output row: `row[m + a] = acc[a]/N` for
/// `a ∈ 0..=m` and `row[m - a]` its conjugate, the mirror written forward
/// (reads reversed). Negating the already-scaled imaginary part is exact,
/// identical to `.conj()` of the `a ≥ 0` cell.
#[inline(always)]
fn finalize_row_scalar(row_vals: &mut [Cplx], ar: &[f64], ai: &[f64], m: usize, scale: f64) {
    let (neg, pos) = row_vals.split_at_mut(m);
    for (a, cell) in pos.iter_mut().enumerate() {
        *cell = Cplx::new(ar[a] * scale, ai[a] * scale);
    }
    for (j, cell) in neg.iter_mut().enumerate() {
        let a = m - j;
        *cell = Cplx::new(ar[a] * scale, -(ai[a] * scale));
    }
}

/// Streams `src` into `dst` with non-temporal stores, bit-exact. The
/// output matrix is written exactly once per call and read much later (if
/// at all), so bypassing the cache avoids the read-for-ownership of every
/// output line — at wideband scales that is megabytes of loads for data
/// that is about to be overwritten. Requires a 16-byte-aligned `dst`
/// (checked by the caller).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn nt_copy_avx(dst: *mut f64, src: *const f64, n: usize) {
    use std::arch::x86_64::{_mm256_loadu_pd, _mm256_stream_pd, _mm_loadu_pd, _mm_stream_pd};
    let mut i = 0usize;
    if !(dst as usize).is_multiple_of(32) && i + 2 <= n {
        _mm_stream_pd(dst, _mm_loadu_pd(src));
        i = 2;
    }
    while i + 4 <= n {
        _mm256_stream_pd(dst.add(i), _mm256_loadu_pd(src.add(i)));
        i += 4;
    }
    if i < n {
        _mm_stream_pd(dst.add(i), _mm_loadu_pd(src.add(i)));
    }
}

/// [`nt_copy_avx`] at SSE2 width (x86-64 baseline, no detection needed).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn nt_copy_sse2(dst: *mut f64, src: *const f64, n: usize) {
    use std::arch::x86_64::{_mm_loadu_pd, _mm_stream_pd};
    let mut i = 0usize;
    while i + 2 <= n {
        // SAFETY: caller guarantees 16-byte-aligned dst and n readable /
        // writable f64s.
        unsafe { _mm_stream_pd(dst.add(i), _mm_loadu_pd(src.add(i))) };
        i += 2;
    }
}

/// Copies one finished row into the output matrix, streaming past the
/// cache when the destination is 16-byte aligned (always true in
/// practice: `Cplx` cells are 16 bytes and allocations of that size class
/// are at least 16-byte aligned). Plain copy otherwise — same bits either
/// way.
fn copy_row_out(dst: &mut [Cplx], src: &[Cplx]) {
    #[cfg(target_arch = "x86_64")]
    if (dst.as_ptr() as usize).is_multiple_of(16) && dst.len() == src.len() {
        let n = dst.len() * 2;
        let d = dst.as_mut_ptr() as *mut f64;
        let s = src.as_ptr() as *const f64;
        // SAFETY: dst is 16-byte aligned (checked), the lengths match, and
        // both ranges hold exactly `n` f64s.
        unsafe {
            if vector_tier() != VectorTier::Generic {
                nt_copy_avx(d, s, n);
            } else {
                nt_copy_sse2(d, s, n);
            }
        }
        return;
    }
    dst.copy_from_slice(src);
}

/// Orders the non-temporal finaliser stores before the call returns (a
/// no-op where streaming stores are not used).
fn finalize_fence() {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_sfence` has no preconditions.
    unsafe {
        std::arch::x86_64::_mm_sfence()
    };
}

/// Runs one row-band through the widest kernel the host supports.
fn accumulate_band(
    segments: &[RowSegment],
    row_bounds: &[u32],
    band: std::ops::Range<usize>,
    half: usize,
    k: usize,
    scratch: &mut ScfScratch,
) {
    match vector_tier() {
        // SAFETY: each arm is gated on runtime detection of its feature.
        #[cfg(target_arch = "x86_64")]
        VectorTier::Avx512 => unsafe {
            accumulate_band_avx512(segments, row_bounds, band, half, k, scratch)
        },
        #[cfg(target_arch = "x86_64")]
        VectorTier::Avx2 => unsafe {
            accumulate_band_avx2(segments, row_bounds, band, half, k, scratch)
        },
        VectorTier::Generic => {
            accumulate_band_generic(segments, row_bounds, band, half, k, scratch)
        }
    }
}

/// Shared fused multiply–accumulate over one contiguous segment: for every
/// staged block `b` (the planes hold `x_re.len() / k` blocks of `k` bins),
/// accumulates `acc[i] += x[b·k + xs + i] · conj(y[b·k + ys + i])` in split
/// re/im form, blocks strictly ascending per accumulator, the same fused
/// 4/2/1 register chains as the engine's band kernel. With `init` the
/// first pass starts every accumulator from a literal `0.0` instead of
/// reading it — bitwise identical to accumulating onto zero-filled memory
/// (`0.0 + t₀` is not foldable, see [`seg_pass_init`]) while sparing the
/// caller the clearing write and the first read; `init` requires at least
/// one staged block, or the accumulators would keep their stale state.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mac_segment_body(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
    init: bool,
) {
    let len = ar.len();
    let n = x_re.len() / k;
    let op = |b: usize| -> SegOperands<'_> {
        (
            &x_re[b * k + xs..][..len],
            &x_im[b * k + xs..][..len],
            &y_re[b * k + ys..][..len],
            &y_im[b * k + ys..][..len],
        )
    };
    let mut b = 0usize;
    if init {
        debug_assert!(n >= 1, "init requires at least one staged block");
        if n >= 4 {
            let ops = [op(0), op(1), op(2), op(3)];
            seg_pass_init(ar, ai, &ops);
            b = 4;
        } else if n >= 2 {
            let ops = [op(0), op(1)];
            seg_pass_init(ar, ai, &ops);
            b = 2;
        } else {
            let ops = [op(0)];
            seg_pass_init(ar, ai, &ops);
            b = 1;
        }
    }
    while b + 4 <= n {
        let ops = [op(b), op(b + 1), op(b + 2), op(b + 3)];
        seg_pass(ar, ai, &ops);
        b += 4;
    }
    if b + 2 <= n {
        let ops = [op(b), op(b + 1)];
        seg_pass(ar, ai, &ops);
        b += 2;
    }
    if b < n {
        let ops = [op(b)];
        seg_pass(ar, ai, &ops);
    }
}

/// [`mac_segment_body`] compiled for AVX2 — wider lanes, identical IEEE
/// arithmetic (no `fma`, so no contraction; see [`accumulate_band_avx2`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn mac_segment_avx2(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
    init: bool,
) {
    mac_segment_body(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys, init);
}

/// [`mac_segment_body`] compiled for AVX-512 (8-wide `f64` lanes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
fn mac_segment_avx512(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
    init: bool,
) {
    mac_segment_body(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys, init);
}

/// Hidden crate-sharing hook: the tiled SoC's analytic fast path reuses
/// the engine's unit-stride MAC kernel (and its runtime vector-tier
/// dispatch) for its own per-tile segment decomposition. Not part of the
/// public API surface — the layout contract (`k`-bin SoA planes, segment
/// windows in bounds) is the caller's to uphold and panics on violation.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn mac_segment_blocks(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
    init: bool,
) {
    match vector_tier() {
        // SAFETY: each arm is gated on runtime detection of its feature.
        #[cfg(target_arch = "x86_64")]
        VectorTier::Avx512 => unsafe {
            mac_segment_avx512(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys, init)
        },
        #[cfg(target_arch = "x86_64")]
        VectorTier::Avx2 => unsafe {
            mac_segment_avx2(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys, init)
        },
        VectorTier::Generic => mac_segment_body(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys, init),
    }
}

/// The retire-side counterpart of [`mac_segment_body`]: the same staged
/// SoA plane layout and 4/2/1 unrolled block chains, subtracting each
/// block's `x · conj(y)` contribution instead of adding it. There is no
/// `init` variant — retiring always updates an existing accumulation.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn sub_segment_body(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
) {
    let len = ar.len();
    let n = x_re.len() / k;
    let op = |b: usize| -> SegOperands<'_> {
        (
            &x_re[b * k + xs..][..len],
            &x_im[b * k + xs..][..len],
            &y_re[b * k + ys..][..len],
            &y_im[b * k + ys..][..len],
        )
    };
    let mut b = 0usize;
    while b + 4 <= n {
        let ops = [op(b), op(b + 1), op(b + 2), op(b + 3)];
        seg_pass_sub(ar, ai, &ops);
        b += 4;
    }
    if b + 2 <= n {
        let ops = [op(b), op(b + 1)];
        seg_pass_sub(ar, ai, &ops);
        b += 2;
    }
    if b < n {
        let ops = [op(b)];
        seg_pass_sub(ar, ai, &ops);
    }
}

/// [`sub_segment_body`] compiled for AVX2 — wider lanes, identical IEEE
/// arithmetic (no `fma`, so no contraction; see [`accumulate_band_avx2`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn sub_segment_avx2(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
) {
    sub_segment_body(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys);
}

/// [`sub_segment_body`] compiled for AVX-512 (8-wide `f64` lanes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
fn sub_segment_avx512(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
) {
    sub_segment_body(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys);
}

/// Runtime-dispatched retire pass over one contiguous segment — the
/// subtracting sibling of [`mac_segment_blocks`].
#[allow(clippy::too_many_arguments)]
fn sub_segment_blocks(
    ar: &mut [f64],
    ai: &mut [f64],
    x_re: &[f64],
    x_im: &[f64],
    y_re: &[f64],
    y_im: &[f64],
    k: usize,
    xs: usize,
    ys: usize,
) {
    match vector_tier() {
        // SAFETY: each arm is gated on runtime detection of its feature.
        #[cfg(target_arch = "x86_64")]
        VectorTier::Avx512 => unsafe {
            sub_segment_avx512(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys)
        },
        #[cfg(target_arch = "x86_64")]
        VectorTier::Avx2 => unsafe { sub_segment_avx2(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys) },
        VectorTier::Generic => sub_segment_body(ar, ai, x_re, x_im, y_re, y_im, k, xs, ys),
    }
}

/// Un-normalised half-grid accumulation state for the sliding-window
/// (incremental) DSCF integration path.
///
/// The planes hold `Σ_n X_{n,f+a}·conj(X_{n,f−a})` for the `a ≥ 0` half of
/// the grid in split re/im form — exactly the engine's internal band
/// accumulator layout, but owned by the caller and persistent across
/// blocks, so a streaming sensor can add the newest block's contribution
/// ([`ScfEngine::accumulate_block`]), retire the oldest
/// ([`ScfEngine::retire_block`]) and normalise + mirror into an
/// [`ScfMatrix`] ([`ScfEngine::finalize_accumulator`]) in O(grid) per hop.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfAccumulator {
    max_offset: usize,
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
}

impl ScfAccumulator {
    fn new(max_offset: usize) -> Self {
        let p = 2 * max_offset + 1;
        let half = max_offset + 1;
        ScfAccumulator {
            max_offset,
            acc_re: vec![0.0; p * half],
            acc_im: vec![0.0; p * half],
        }
    }

    /// The maximum absolute grid index `M` this accumulator was sized for.
    pub fn max_offset(&self) -> usize {
        self.max_offset
    }

    /// Heap bytes held by the two half-grid planes of an accumulator for
    /// `max_offset` — what a ring of cached per-block contribution planes
    /// costs per block, for memory-budget decisions made before allocating.
    pub fn bytes_for(max_offset: usize) -> usize {
        let p = 2 * max_offset + 1;
        let half = max_offset + 1;
        2 * p * half * std::mem::size_of::<f64>()
    }

    /// Zeroes both planes (allocation kept).
    pub fn reset(&mut self) {
        self.acc_re.fill(0.0);
        self.acc_im.fill(0.0);
    }

    /// Adds another accumulation cell-by-cell (`self += other`) — how a
    /// cached per-block contribution plane is folded into the window sum.
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators have different `max_offset`.
    pub fn add_assign(&mut self, other: &ScfAccumulator) {
        assert_eq!(
            self.max_offset, other.max_offset,
            "cannot combine DSCF accumulators of different sizes"
        );
        for (a, b) in self.acc_re.iter_mut().zip(&other.acc_re) {
            *a += b;
        }
        for (a, b) in self.acc_im.iter_mut().zip(&other.acc_im) {
            *a += b;
        }
    }

    /// Subtracts another accumulation cell-by-cell (`self -= other`) — how
    /// a cached per-block contribution plane is retired from the window
    /// sum.
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators have different `max_offset`.
    pub fn sub_assign(&mut self, other: &ScfAccumulator) {
        assert_eq!(
            self.max_offset, other.max_offset,
            "cannot combine DSCF accumulators of different sizes"
        );
        for (a, b) in self.acc_re.iter_mut().zip(&other.acc_re) {
            *a -= b;
        }
        for (a, b) in self.acc_im.iter_mut().zip(&other.acc_im) {
            *a -= b;
        }
    }
}

/// The fast software DSCF kernel: segment-decomposed, unit-stride,
/// symmetry-halved, and allocation-reusing.
///
/// [`dscf_reference`] is deliberately a transliteration of eq. 3, and its
/// hot loop pays for that honesty at every one of the `P²` grid points:
/// two `%` operations inside [`centred_bin`], a bounds-checked
/// `flat_index` with a panicking unwrap, and a full evaluation of the
/// `a < 0` half even though `S_f^{-a} = conj(S_f^a)` (a property this
/// module property-tests). An `ScfEngine` precomputes everything that
/// depends only on the [`ScfParams`], once:
///
/// * an [`FftPlan`] and the analysis-window coefficients, shared by every
///   block of every observation ([`ScfEngine::compute_spectra`] routes
///   through [`block_spectrum_with_plan`](crate::fft::block_spectrum_with_plan), the same code path
///   [`block_spectrum`] uses, so engine spectra are bit-identical to the
///   golden model's);
/// * a run-length decomposition of every half-grid row into contiguous
///   `RowSegment`s: along a row (fixed `f`, `a` ascending) the direct
///   operand walks `bin(f), bin(f)+1, …` and the conjugate operand walks
///   `bin(f−a)` — *descending*, but forward through the index-reversed
///   block `rev[t] = block[(K−t) mod K]`. Each sequence is consecutive
///   modulo `K`, so a row needs at most two segments (one wrap of one
///   operand: the direct run wraps only for `f < 0`, the reversed run only
///   for `f > 0`) and the inner loop is pure unit stride — no gather
///   tables, no modular arithmetic, no per-point panic machinery;
/// * row-band × block cache blocking: the accumulation iterates bands of
///   rows in an outer loop and blocks inside, so a band of accumulator
///   rows stays in L1/L2 while each staged block spectrum streams through
///   it once;
/// * row-major accumulation with the `a < 0` half mirrored once at the end
///   by conjugation, halving the multiply count (for a 127×127 grid:
///   127·64 = 8 128 products per block instead of 16 129).
///
/// [`ScfEngine::compute_into`] re-integrates into an existing
/// [`ScfMatrix`], so Monte-Carlo sweeps reuse one matrix allocation across
/// all trials.
///
/// The mirrored half is *exactly* the conjugate of the computed half in
/// IEEE arithmetic (conjugation commutes exactly with the complex
/// multiply–accumulate used here); the reversed block holds exact copies
/// of the original bins; and the `a ≥ 0` half performs the same product
/// expression and per-accumulator addition order (blocks ascending) as the
/// reference — so the engine is bit-identical to [`dscf_reference`], not
/// merely close. Tests assert a max abs difference ≤ 1e-12 and
/// `tests/unit_stride.rs` pins exact equality; in practice it is 0.0.
///
/// # Examples
///
/// ```
/// use cfd_dsp::scf::{dscf_reference, ScfEngine, ScfParams};
/// use cfd_dsp::signal::awgn;
///
/// # fn main() -> Result<(), cfd_dsp::error::DspError> {
/// let params = ScfParams::new(32, 7, 4)?;
/// let signal = awgn(params.samples_needed(), 1.0, 11);
/// let engine = ScfEngine::new(params.clone())?;
/// let fast = engine.compute(&signal)?;
/// let golden = dscf_reference(&signal, &params)?;
/// assert!(fast.max_abs_difference(&golden) <= 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScfEngine {
    params: ScfParams,
    plan: FftPlan,
    window_coeffs: Vec<f64>,
    /// The flattened per-row run decomposition of the `a ≥ 0` half-grid;
    /// row `r` owns `segments[row_bounds[r]..row_bounds[r+1]]`.
    segments: Vec<RowSegment>,
    /// `P + 1` offsets into `segments` delimiting each row's runs.
    row_bounds: Vec<u32>,
}

/// Engines are equal iff their parameters are equal: every table is a pure
/// function of the [`ScfParams`].
impl PartialEq for ScfEngine {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
    }
}

impl ScfEngine {
    /// Builds an engine for `params`, precomputing the FFT plan, window
    /// coefficients and the per-row segment decomposition of the `a ≥ 0`
    /// half-grid.
    ///
    /// # Errors
    ///
    /// * [`DspError::InvalidParameter`] for invalid parameters,
    /// * [`DspError::NotPowerOfTwo`] if `fft_len` is not a power of two.
    pub fn new(params: ScfParams) -> Result<Self, DspError> {
        params.validate()?;
        let plan = FftPlan::new(params.fft_len)?;
        let window_coeffs = params.window.coefficients(params.fft_len);
        let m = params.max_offset as i32;
        let k = params.fft_len;
        let half = params.max_offset + 1;
        let p = params.grid_size();
        // For row `f`, offset `a`: the direct operand is
        // `block[(bin(f) + a) mod K]` and the conjugate operand is
        // `rev[(bin(−f) + a) mod K]` (both advance by one per offset).
        // Cut the row wherever either start-plus-offset reaches `K`; with
        // `2M < K` at most one operand wraps per row, so rows decompose
        // into at most two runs.
        let mut segments = Vec::with_capacity(2 * p);
        let mut row_bounds = Vec::with_capacity(p + 1);
        row_bounds.push(0u32);
        for f in -m..=m {
            let mut a = 0usize;
            let mut plus = centred_bin(f, k);
            let mut rev = centred_bin(-f, k);
            while a < half {
                let len = (half - a).min(k - plus).min(k - rev);
                segments.push(RowSegment {
                    out: a as u32,
                    len: len as u32,
                    plus: plus as u32,
                    rev: rev as u32,
                });
                a += len;
                plus = (plus + len) % k;
                rev = (rev + len) % k;
            }
            row_bounds.push(segments.len() as u32);
        }
        Ok(ScfEngine {
            params,
            plan,
            window_coeffs,
            segments,
            row_bounds,
        })
    }

    /// The parameters this engine was built for.
    pub fn params(&self) -> &ScfParams {
        &self.params
    }

    /// Computes the block spectra `X_{n,v}` of eq. 2 using the cached plan
    /// and window coefficients. Bit-identical to [`block_spectra`].
    ///
    /// # Errors
    ///
    /// [`DspError::InsufficientSamples`] if the signal is too short.
    pub fn compute_spectra(&self, signal: &[Cplx]) -> Result<Vec<Vec<Cplx>>, DspError> {
        let mut spectra = Vec::with_capacity(self.params.num_blocks);
        self.compute_spectra_into(signal, &mut spectra)?;
        Ok(spectra)
    }

    /// [`ScfEngine::compute_spectra`] writing into caller-owned buffers:
    /// `out` is resized to `num_blocks` and every inner spectrum reuses its
    /// allocation, so sweep workers recompute spectra trial after trial
    /// without churning the allocator.
    ///
    /// # Errors
    ///
    /// [`DspError::InsufficientSamples`] if the signal is too short.
    pub fn compute_spectra_into(
        &self,
        signal: &[Cplx],
        out: &mut Vec<Vec<Cplx>>,
    ) -> Result<(), DspError> {
        if signal.len() < self.params.samples_needed() {
            return Err(DspError::InsufficientSamples {
                needed: self.params.samples_needed(),
                available: signal.len(),
            });
        }
        let _span = spectra_ns().start_timer();
        out.truncate(self.params.num_blocks);
        while out.len() < self.params.num_blocks {
            out.push(Vec::with_capacity(self.params.fft_len));
        }
        for (n, block) in out.iter_mut().enumerate() {
            block_spectrum_into(
                signal,
                n * self.params.block_stride,
                &self.plan,
                &self.window_coeffs,
                block,
            )?;
        }
        Ok(())
    }

    /// Evaluates eq. 3 from precomputed block spectra into `out`, reusing
    /// its allocation (the matrix is resized only if its grid differs).
    ///
    /// Only the `a ≥ 0` half is accumulated; the `a < 0` half is filled by
    /// conjugation after the `1/N` normalisation.
    ///
    /// # Panics
    ///
    /// Panics if any block is shorter than `params.fft_len` (same contract
    /// as [`dscf_from_spectra`]).
    pub fn dscf_from_spectra_into(&self, spectra: &[Vec<Cplx>], out: &mut ScfMatrix) {
        let _span = accumulate_ns().start_timer();
        let m = self.params.max_offset;
        let p = self.params.grid_size();
        let k = self.params.fft_len;
        // Per-scale latency on top of the aggregate histogram, so wideband
        // grids are visible separately (name lookup gated: formatting a
        // dynamic instrument name is not free in the disabled default).
        let _scale_span = if cfd_telemetry::enabled() {
            Some(cfd_telemetry::histogram(&format!("dsp.scf.accumulate_ns.g{p}")).start_timer())
        } else {
            None
        };
        segment_runs().add((self.segments.len() * spectra.len()) as u64);
        if out.max_offset != m {
            *out = ScfMatrix::zeros(m);
        }
        for block in spectra {
            assert!(
                block.len() >= k,
                "block spectrum shorter ({}) than fft_len ({k})",
                block.len()
            );
        }
        if spectra.is_empty() {
            // The band finaliser below writes every cell, so zeroing is
            // only needed when there is nothing to accumulate.
            out.values.fill(Cplx::ZERO);
            return;
        }
        SCF_SCRATCH.with(|scratch| {
            self.accumulate_segments(spectra, &mut scratch.borrow_mut(), out);
        });
    }

    /// The unit-stride accumulation kernel behind
    /// [`ScfEngine::dscf_from_spectra_into`] (spectra pre-validated,
    /// non-empty).
    ///
    /// Stages every block once into re/im-split planes — the direct copy
    /// and the index-reversed copy `rev[t] = block[(K−t) mod K]` — then
    /// runs the per-row segments as forward unit-stride passes over those
    /// planes, cache-blocked so a band of accumulator rows stays resident
    /// while each block streams through it. The staged values are exact
    /// copies and the per-accumulator addition order is blocks-ascending
    /// with the reference's product expression (four products, two
    /// single-rounded sums — `f64::mul_add` was measured here in PR 4 and
    /// rejected: without FMA in the target feature set it lowers to a libm
    /// call per point, 6× slower), so the result is bit-identical to
    /// [`dscf_reference`].
    fn accumulate_segments(
        &self,
        spectra: &[Vec<Cplx>],
        scratch: &mut ScfScratch,
        out: &mut ScfMatrix,
    ) {
        let m = self.params.max_offset;
        let p = self.params.grid_size();
        let half = m + 1;
        let k = self.params.fft_len;
        let n = spectra.len();
        stage_operand_planes(scratch, k, spectra.iter().map(|block| &block[..k]));
        // Row-band × block cache blocking: the accumulator slab covers only
        // one band of rows (~64 KiB across the re + im planes), stays hot
        // while every staged block streams through it, and is normalised
        // and mirrored into `out` before the next band reuses it — so the
        // accumulator traffic never round-trips through memory at any grid
        // size.
        let band_rows = (4096 / half).clamp(4, 512).min(p);
        for plane in [&mut scratch.acc_re, &mut scratch.acc_im] {
            plane.clear();
            plane.resize(band_rows * half, 0.0);
        }
        scratch.row_buf.clear();
        scratch.row_buf.resize(p, Cplx::ZERO);
        let scale = 1.0 / n as f64;
        let mut band_start = 0usize;
        while band_start < p {
            let band_end = (band_start + band_rows).min(p);
            // No slab clearing: each row's segments tile `[0, half)`
            // exactly, and the first pass of every segment writes through
            // `seg_pass_init`.
            accumulate_band(
                &self.segments,
                &self.row_bounds,
                band_start..band_end,
                half,
                k,
                scratch,
            );
            // Normalise and mirror the finished band: `out = acc/N` for
            // `a ≥ 0`, conjugate for `a < 0` — the same single-rounded
            // scaling the pre-segment kernel applied via `Cplx * f64`. Each
            // row is assembled in an L1-hot staging buffer, then streamed
            // into the (cold, write-once) output with wide non-temporal
            // copies.
            for row in band_start..band_end {
                let local = (row - band_start) * half;
                let ar = &scratch.acc_re[local..][..half];
                let ai = &scratch.acc_im[local..][..half];
                finalize_row_scalar(&mut scratch.row_buf, ar, ai, m, scale);
                let row_vals = &mut out.values[row * p..(row + 1) * p];
                copy_row_out(row_vals, &scratch.row_buf);
            }
            band_start = band_end;
        }
        finalize_fence();
    }

    /// Full evaluation (spectra + eq. 3) into an existing matrix, reusing
    /// the matrix allocation across calls. The intermediate spectra are
    /// still allocated per call; loops that want zero steady-state
    /// allocation should hold their own spectra scratch and pair
    /// [`ScfEngine::compute_spectra_into`] with
    /// [`ScfEngine::dscf_from_spectra_into`].
    ///
    /// # Errors
    ///
    /// [`DspError::InsufficientSamples`] if the signal is too short.
    pub fn compute_into(&self, signal: &[Cplx], out: &mut ScfMatrix) -> Result<(), DspError> {
        let spectra = self.compute_spectra(signal)?;
        self.dscf_from_spectra_into(&spectra, out);
        Ok(())
    }

    /// Full evaluation into a freshly allocated matrix.
    ///
    /// # Errors
    ///
    /// [`DspError::InsufficientSamples`] if the signal is too short.
    pub fn compute(&self, signal: &[Cplx]) -> Result<ScfMatrix, DspError> {
        let mut out = ScfMatrix::zeros(self.params.max_offset);
        self.compute_into(signal, &mut out)?;
        Ok(out)
    }

    // --- incremental (sliding-window) integration entry points ----------

    /// Computes the spectrum of the single `fft_len`-sample block starting
    /// at `signal[start]`, using the cached plan and window coefficients —
    /// the streaming layer's per-hop FFT, bit-identical to the
    /// corresponding block of [`ScfEngine::compute_spectra`] for the same
    /// `start`. Note `start` also sets the block's eq.-2 phase rotation:
    /// a streaming sensor that slices the block out of its own buffer
    /// passes `start = 0` (a **raw**, unrotated spectrum) and re-phases
    /// per hop with [`ScfEngine::rotate_spectrum_into`].
    ///
    /// # Errors
    ///
    /// [`DspError::InsufficientSamples`] if the signal ends before
    /// `start + fft_len`.
    pub fn block_spectrum_into(
        &self,
        signal: &[Cplx],
        start: usize,
        out: &mut Vec<Cplx>,
    ) -> Result<(), DspError> {
        let _span = spectra_ns().start_timer();
        block_spectrum_into(signal, start, &self.plan, &self.window_coeffs, out)
    }

    /// Copies `spectrum` and applies the eq.-2 absolute-time phase
    /// rotation `X[v] *= exp(-j·2π·start·v/K)` of a block beginning at
    /// sample `start`.
    ///
    /// Applied to a raw (`start = 0`) spectrum, the result is
    /// **bit-identical** to computing that block directly at `start`
    /// ([`ScfEngine::block_spectrum_into`] runs the same table-driven
    /// rotation on the same FFT output). A streaming sensor keeps one raw
    /// spectrum per retained block and re-phases it on demand — into the
    /// window-relative frame for an exact batch-equal refresh, or into
    /// the absolute-time frame for the rolling accumulation.
    pub fn rotate_spectrum_into(&self, spectrum: &[Cplx], start: usize, out: &mut Vec<Cplx>) {
        out.clear();
        out.extend_from_slice(spectrum);
        self.plan.rotate_block_phase(start, out);
    }

    /// Re-bases a window accumulation between phase frames: multiplies
    /// every offset column `a` of the half-grid accumulator by
    /// `exp(∓j·2π·(2a·start)/K)` (`conjugate = true` selects the `+`
    /// sign).
    ///
    /// Shifting every block start of a window by `start` samples
    /// multiplies each block's eq.-2 phase by `exp(-j·2π·v·start/K)`, so
    /// the eq.-3 product `X_{f+a}·conj(X_{f−a})` — and therefore the
    /// whole per-column accumulation — picks up
    /// `exp(-j·2π·2a·start/K)`, independent of `f` and of the block.
    /// A streaming sensor accumulates in the absolute-time frame (block
    /// `b` rotated by `b·hop`) and conjugate-rotates a copy by the
    /// window's start before finalising, which re-phases the sum into
    /// exactly the frame the batch engine uses for that window. The
    /// factors come from the FFT plan's rotation table
    /// ([`FftPlan::phase_root`](crate::fft::FftPlan::phase_root)), so
    /// frames compose bit-exactly with [`ScfEngine::rotate_spectrum_into`]
    /// (and the `a = 0` ridge, whose phase is always 1, is left
    /// untouched).
    ///
    /// # Panics
    ///
    /// Panics if `acc` was built for a different grid.
    pub fn rotate_accumulator_columns(
        &self,
        acc: &mut ScfAccumulator,
        start: usize,
        conjugate: bool,
    ) {
        let m = self.params.max_offset;
        let half = m + 1;
        let p = self.params.grid_size();
        let k = self.params.fft_len;
        assert_eq!(
            acc.max_offset, m,
            "accumulator grid (±{}) does not match the engine grid (±{m})",
            acc.max_offset
        );
        let s = start % k;
        if s == 0 {
            return;
        }
        let step = (2 * s) % k;
        for row in 0..p {
            let base = row * half;
            let mut r = 0usize;
            for a in 1..half {
                r += step;
                if r >= k {
                    r -= k;
                }
                if r == 0 {
                    // A full turn: multiplying by the exact 1+0j root
                    // would still rewrite -0.0 signs; skip to keep bits.
                    continue;
                }
                let root = self.plan.phase_root(r);
                let (wr, wi) = if conjugate {
                    (root.re, -root.im)
                } else {
                    (root.re, root.im)
                };
                let re = acc.acc_re[base + a];
                let im = acc.acc_im[base + a];
                acc.acc_re[base + a] = re * wr - im * wi;
                acc.acc_im[base + a] = im * wr + re * wi;
            }
        }
    }

    /// A zeroed [`ScfAccumulator`] matching this engine's grid.
    pub fn accumulator(&self) -> ScfAccumulator {
        ScfAccumulator::new(self.params.max_offset)
    }

    /// Adds one block spectrum's contribution
    /// `X_{f+a}·conj(X_{f−a})` to `acc`, running the engine's per-row
    /// segments as unit-stride SIMD passes — O(grid), independent of the
    /// window length.
    ///
    /// Adding `N` blocks one at a time onto a fresh accumulator and
    /// finalising is **bit-identical** to the batch
    /// [`ScfEngine::dscf_from_spectra_into`]: per accumulator cell the
    /// blocks arrive in the same order with the same product expression,
    /// and the batch kernel's fused 4/2/1 chains do not change that
    /// per-cell addition tree.
    ///
    /// # Panics
    ///
    /// Panics if `block` is shorter than `fft_len` or if `acc` was built
    /// for a different grid.
    pub fn accumulate_block(&self, block: &[Cplx], acc: &mut ScfAccumulator) {
        self.single_block_pass(block, acc, false);
    }

    /// Subtracts one block spectrum's contribution from `acc` — the retire
    /// half of a sliding-window hop. The subtracted term is bit-for-bit
    /// the value [`ScfEngine::accumulate_block`] added for the same block,
    /// so the only residue of an add-then-retire cycle is the
    /// associativity rounding of `(acc + t) − t`, which callers bound with
    /// periodic exact refreshes ([`ScfEngine::accumulate_window`]).
    ///
    /// # Panics
    ///
    /// Panics if `block` is shorter than `fft_len` or if `acc` was built
    /// for a different grid.
    pub fn retire_block(&self, block: &[Cplx], acc: &mut ScfAccumulator) {
        self.single_block_pass(block, acc, true);
    }

    fn single_block_pass(&self, block: &[Cplx], acc: &mut ScfAccumulator, subtract: bool) {
        let m = self.params.max_offset;
        let half = m + 1;
        let k = self.params.fft_len;
        assert_eq!(
            acc.max_offset, m,
            "accumulator grid (±{}) does not match the engine grid (±{m})",
            acc.max_offset
        );
        assert!(
            block.len() >= k,
            "block spectrum shorter ({}) than fft_len ({k})",
            block.len()
        );
        segment_runs().add(self.segments.len() as u64);
        SCF_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            stage_operand_planes(scratch, k, std::iter::once(&block[..k]));
            let ScfScratch {
                plus_re,
                plus_im,
                rev_re,
                rev_im,
                ..
            } = &*scratch;
            for (row, bounds) in self.row_bounds.windows(2).enumerate() {
                let base = row * half;
                for seg in &self.segments[bounds[0] as usize..bounds[1] as usize] {
                    let len = seg.len as usize;
                    let ar = &mut acc.acc_re[base + seg.out as usize..][..len];
                    let ai = &mut acc.acc_im[base + seg.out as usize..][..len];
                    let (xs, ys) = (seg.plus as usize, seg.rev as usize);
                    if subtract {
                        sub_segment_blocks(ar, ai, plus_re, plus_im, rev_re, rev_im, k, xs, ys);
                    } else {
                        mac_segment_blocks(
                            ar, ai, plus_re, plus_im, rev_re, rev_im, k, xs, ys, false,
                        );
                    }
                }
            }
        });
    }

    /// Overwrites `acc` with the full accumulation over `blocks` using the
    /// fused 4/2/1 block chains — the exact-refresh pass of a streaming
    /// sensor, and **bit-identical** (after
    /// [`ScfEngine::finalize_accumulator`] with `num_blocks =
    /// blocks.len()`) to the batch [`ScfEngine::dscf_from_spectra_into`]
    /// over the same spectra. An empty `blocks` resets the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if any block is shorter than `fft_len` or if `acc` was built
    /// for a different grid.
    pub fn accumulate_window(&self, blocks: &[&[Cplx]], acc: &mut ScfAccumulator) {
        let m = self.params.max_offset;
        let half = m + 1;
        let k = self.params.fft_len;
        assert_eq!(
            acc.max_offset, m,
            "accumulator grid (±{}) does not match the engine grid (±{m})",
            acc.max_offset
        );
        if blocks.is_empty() {
            acc.reset();
            return;
        }
        for block in blocks {
            assert!(
                block.len() >= k,
                "block spectrum shorter ({}) than fft_len ({k})",
                block.len()
            );
        }
        segment_runs().add((self.segments.len() * blocks.len()) as u64);
        SCF_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            stage_operand_planes(scratch, k, blocks.iter().map(|block| &block[..k]));
            let ScfScratch {
                plus_re,
                plus_im,
                rev_re,
                rev_im,
                ..
            } = &*scratch;
            for (row, bounds) in self.row_bounds.windows(2).enumerate() {
                let base = row * half;
                for seg in &self.segments[bounds[0] as usize..bounds[1] as usize] {
                    let len = seg.len as usize;
                    let ar = &mut acc.acc_re[base + seg.out as usize..][..len];
                    let ai = &mut acc.acc_im[base + seg.out as usize..][..len];
                    let (xs, ys) = (seg.plus as usize, seg.rev as usize);
                    // `init = true`: the first chain starts from literal
                    // zero, overwriting whatever the accumulator held.
                    mac_segment_blocks(ar, ai, plus_re, plus_im, rev_re, rev_im, k, xs, ys, true);
                }
            }
        });
    }

    /// Normalises (`1/num_blocks`) and mirrors the accumulated `a ≥ 0`
    /// half into a full [`ScfMatrix`] — the same
    /// `finalize_row_scalar`-plus-streaming-copy path the batch kernel
    /// runs, so equal accumulator planes produce a bit-identical matrix.
    /// `out` is resized only if its grid differs.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is zero or if `acc` was built for a
    /// different grid.
    pub fn finalize_accumulator(
        &self,
        acc: &ScfAccumulator,
        num_blocks: usize,
        out: &mut ScfMatrix,
    ) {
        let m = self.params.max_offset;
        let half = m + 1;
        let p = self.params.grid_size();
        assert_eq!(
            acc.max_offset, m,
            "accumulator grid (±{}) does not match the engine grid (±{m})",
            acc.max_offset
        );
        assert!(num_blocks > 0, "cannot normalise over zero blocks");
        if out.max_offset != m {
            *out = ScfMatrix::zeros(m);
        }
        let scale = 1.0 / num_blocks as f64;
        SCF_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.row_buf.clear();
            scratch.row_buf.resize(p, Cplx::ZERO);
            for row in 0..p {
                let ar = &acc.acc_re[row * half..][..half];
                let ai = &acc.acc_im[row * half..][..half];
                finalize_row_scalar(&mut scratch.row_buf, ar, ai, m, scale);
                copy_row_out(&mut out.values[row * p..(row + 1) * p], &scratch.row_buf);
            }
        });
        finalize_fence();
    }

    /// The cyclic-domain profile of the matrix `acc` would finalize to,
    /// computed straight off the `a ≥ 0` accumulator half — no
    /// [`ScfMatrix`] is materialised. `out` is resized to the grid size;
    /// element `[a + M]` is the profile at offset `a`.
    ///
    /// **Bit-identical** to
    /// `finalize_accumulator(acc, num_blocks, &mut scf)` followed by
    /// [`ScfMatrix::cyclic_profile`]: each scanned square replicates the
    /// finalize arithmetic exactly (`(ar·s)² + (ai·s)²`; the mirror half's
    /// negated imaginary part squares to the same bits), the row order and
    /// max predicate match the matrix scan, and the mirror columns are
    /// copies of the columns they conjugate. This is the streaming
    /// decision path: O(grid/2) multiplies per hop instead of a full
    /// finalize pass plus a full-grid scan.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is zero or if `acc` was built for a
    /// different grid.
    pub fn cyclic_profile_from_accumulator(
        &self,
        acc: &ScfAccumulator,
        num_blocks: usize,
        out: &mut Vec<f64>,
    ) {
        let m = self.params.max_offset;
        let half = m + 1;
        let p = self.params.grid_size();
        assert_eq!(
            acc.max_offset, m,
            "accumulator grid (±{}) does not match the engine grid (±{m})",
            acc.max_offset
        );
        assert!(num_blocks > 0, "cannot normalise over zero blocks");
        let scale = 1.0 / num_blocks as f64;
        out.clear();
        out.resize(p, 0.0);
        let (neg, pos) = out.split_at_mut(m);
        for row in 0..p {
            let ar = &acc.acc_re[row * half..][..half];
            let ai = &acc.acc_im[row * half..][..half];
            for (a, best) in pos.iter_mut().enumerate() {
                let re = ar[a] * scale;
                let im = ai[a] * scale;
                let magnitude = re * re + im * im;
                if magnitude > *best {
                    *best = magnitude;
                }
            }
        }
        for best in pos.iter_mut() {
            *best = best.sqrt();
        }
        for (j, cell) in neg.iter_mut().enumerate() {
            *cell = pos[m - j];
        }
    }
}

/// The spectral autocoherence magnitude
/// `|S_f^a| / sqrt(S_{f+a}^0 · S_{f-a}^0)` clipped to `[0, 1]`, commonly
/// used to normalise cyclic features before thresholding.
///
/// Returns zero where the denominator underflows.
pub fn spectral_coherence(matrix: &ScfMatrix, f: i32, a: i32) -> f64 {
    let m = matrix.max_offset() as i32;
    if f + a > m || f + a < -m || f - a > m || f - a < -m {
        return 0.0;
    }
    let num = matrix.at(f, a).abs();
    let d1 = matrix.at(f + a, 0).abs();
    let d2 = matrix.at(f - a, 0).abs();
    let denom = (d1 * d2).sqrt();
    if denom <= f64::MIN_POSITIVE {
        0.0
    } else {
        (num / denom).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{awgn, complex_tone, modulated_signal, ModulatedSignalSpec};

    #[test]
    fn params_validation() {
        assert!(ScfParams::new(0, 0, 1).is_err());
        assert!(ScfParams::new(64, 32, 1).is_err()); // 2*32 >= 64
        assert!(ScfParams::new(64, 31, 0).is_err());
        let p = ScfParams::new(64, 31, 2).unwrap();
        assert_eq!(p.grid_size(), 63);
        assert_eq!(p.samples_needed(), 128);
        assert!(p.with_stride(0).validate().is_err());
    }

    #[test]
    fn paper_parameters_match_section_4_1() {
        let p = ScfParams::paper_256();
        assert_eq!(p.fft_len, 256);
        assert_eq!(p.max_offset, 63);
        assert_eq!(p.grid_size(), 127);
        // 127 x 127 points in the DSCF.
        assert_eq!(p.total_multiplications(), 16129);
    }

    #[test]
    fn matrix_indexing_and_iteration() {
        let mut m = ScfMatrix::zeros(2);
        assert_eq!(m.grid_size(), 5);
        m.set(-2, 2, Cplx::new(1.0, 0.0));
        m.set(0, 0, Cplx::new(0.0, 1.0));
        m.accumulate(0, 0, Cplx::new(0.0, 1.0));
        assert_eq!(m.at(0, 0), Cplx::new(0.0, 2.0));
        assert_eq!(m.at(-2, 2), Cplx::new(1.0, 0.0));
        assert!(m.get(3, 0).is_none());
        let count = m.iter().count();
        assert_eq!(count, 25);
        let nonzero: Vec<_> = m.iter().filter(|(_, _, v)| v.abs() > 0.0).collect();
        assert_eq!(nonzero.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn matrix_at_panics_out_of_range() {
        let m = ScfMatrix::zeros(1);
        let _ = m.at(2, 0);
    }

    #[test]
    fn centred_bin_wraps_correctly() {
        assert_eq!(centred_bin(0, 8), 0);
        assert_eq!(centred_bin(3, 8), 3);
        assert_eq!(centred_bin(-1, 8), 7);
        assert_eq!(centred_bin(-8, 8), 0);
        assert_eq!(centred_bin(9, 8), 1);
    }

    #[test]
    fn dscf_of_tone_peaks_at_its_frequency_on_the_a0_axis() {
        // Complex tone at bin 5 of a 64-point FFT.
        let k = 64;
        let params = ScfParams::new(k, 15, 4).unwrap();
        let signal = complex_tone(params.samples_needed(), 5.0, k as f64, 0.3);
        let scf = dscf_reference(&signal, &params).unwrap();
        let psd = scf.psd();
        // Peak of the PSD at f = 5 (index 5 + 15 = 20).
        let (argmax, _) = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(argmax as i32 - 15, 5);
    }

    #[test]
    fn dscf_conjugate_symmetry_in_a() {
        // S_f^{-a} = conj(S_f^{a}) follows directly from eq. 3.
        let params = ScfParams::new(32, 7, 3).unwrap();
        let spec = ModulatedSignalSpec {
            samples_per_symbol: 4,
            ..Default::default()
        };
        let signal = modulated_signal(params.samples_needed(), &spec, 21).unwrap();
        let scf = dscf_reference(&signal, &params).unwrap();
        for f in -7..=7 {
            for a in -7..=7 {
                let lhs = scf.at(f, -a);
                let rhs = scf.at(f, a).conj();
                assert!((lhs - rhs).abs() < 1e-9, "f={f}, a={a}");
            }
        }
    }

    #[test]
    fn dscf_a0_values_are_real_nonnegative() {
        let params = ScfParams::new(32, 7, 2).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, 9);
        let scf = dscf_reference(&signal, &params).unwrap();
        for f in -7..=7 {
            let s = scf.at(f, 0);
            assert!(s.im.abs() < 1e-9);
            assert!(s.re >= 0.0);
        }
    }

    #[test]
    fn cyclostationary_signal_has_features_at_symbol_rate() {
        // BPSK with 4 samples/symbol in a 32-point FFT: the symbol rate is
        // 8 bins, so a feature is expected at a = ±4 (since the offset
        // between the correlated bins is 2a).
        let k = 32;
        let params = ScfParams::new(k, 7, 64).unwrap();
        let spec = ModulatedSignalSpec {
            samples_per_symbol: 4,
            ..Default::default()
        };
        let signal = modulated_signal(params.samples_needed(), &spec, 9).unwrap();
        let scf = dscf_reference(&signal, &params).unwrap();
        let profile = scf.cyclic_profile();
        let at = |a: i32| profile[(a + 7) as usize];
        // The a = ±4 feature (2a = 8 bins = symbol rate) must stand clearly
        // above a nearby non-cyclic offset such as a = ±3.
        assert!(
            at(4) > 3.0 * at(3),
            "feature at a=4 ({}) not above a=3 ({})",
            at(4),
            at(3)
        );
        assert!(at(-4) > 3.0 * at(-3));
    }

    #[test]
    fn noise_has_no_dominant_cyclic_feature() {
        let params = ScfParams::new(32, 7, 64).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, 17);
        let scf = dscf_reference(&signal, &params).unwrap();
        let profile = scf.cyclic_profile();
        let at_zero = profile[7];
        let max_nonzero = profile
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 7)
            .map(|(_, &v)| v)
            .fold(0.0, f64::max);
        // For white noise the a=0 ridge dominates any other offset.
        assert!(at_zero > max_nonzero, "{at_zero} vs {max_nonzero}");
    }

    #[test]
    fn averaging_reduces_off_feature_variance() {
        let spec = ModulatedSignalSpec {
            samples_per_symbol: 4,
            ..Default::default()
        };
        let short = ScfParams::new(32, 7, 2).unwrap();
        let long = ScfParams::new(32, 7, 128).unwrap();
        let signal = modulated_signal(long.samples_needed(), &spec, 33).unwrap();
        let scf_short = dscf_reference(&signal, &short).unwrap();
        let scf_long = dscf_reference(&signal, &long).unwrap();
        // Relative strength of the true feature (a=4) vs a spurious offset
        // (a=1) improves with averaging.
        let contrast = |m: &ScfMatrix| {
            let p = m.cyclic_profile();
            p[(4 + 7) as usize] / p[(1 + 7) as usize].max(f64::MIN_POSITIVE)
        };
        assert!(contrast(&scf_long) > contrast(&scf_short));
    }

    #[test]
    fn insufficient_samples_is_reported() {
        let params = ScfParams::new(64, 15, 4).unwrap();
        let signal = vec![Cplx::ZERO; 100];
        assert!(matches!(
            dscf_reference(&signal, &params),
            Err(DspError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn max_abs_difference_and_display() {
        let params = ScfParams::new(32, 3, 1).unwrap();
        let signal = complex_tone(params.samples_needed(), 2.0, 32.0, 0.0);
        let a = dscf_reference(&signal, &params).unwrap();
        let mut b = a.clone();
        assert_eq!(a.max_abs_difference(&b), 0.0);
        b.set(0, 0, b.at(0, 0) + Cplx::new(0.5, 0.0));
        assert!((a.max_abs_difference(&b) - 0.5).abs() < 1e-12);
        assert!(a.to_string().contains("7x7"));
    }

    #[test]
    fn engine_is_bit_identical_to_reference() {
        // Overlapping blocks and a tapered window exercise every table.
        let params = ScfParams::new(64, 15, 6)
            .unwrap()
            .with_stride(32)
            .with_window(Window::Hann);
        let spec = ModulatedSignalSpec {
            samples_per_symbol: 4,
            ..Default::default()
        };
        let signal = modulated_signal(params.samples_needed(), &spec, 5).unwrap();
        let reference = dscf_reference(&signal, &params).unwrap();
        let engine = ScfEngine::new(params.clone()).unwrap();
        assert_eq!(engine.params(), &params);
        let fast = engine.compute(&signal).unwrap();
        assert!(fast.max_abs_difference(&reference) <= 1e-12);
        // Engine spectra equal the golden-model spectra bit for bit.
        let golden_spectra = block_spectra(&signal, &params).unwrap();
        assert_eq!(engine.compute_spectra(&signal).unwrap(), golden_spectra);
    }

    #[test]
    fn engine_compute_into_reuses_and_resizes_the_matrix() {
        let params = ScfParams::new(32, 7, 3).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, 23);
        let engine = ScfEngine::new(params.clone()).unwrap();
        let reference = dscf_reference(&signal, &params).unwrap();
        // A wrong-sized matrix is resized; a right-sized dirty one is
        // cleanly overwritten on re-integration.
        let mut out = ScfMatrix::zeros(2);
        engine.compute_into(&signal, &mut out).unwrap();
        assert_eq!(out.max_offset(), 7);
        assert!(out.max_abs_difference(&reference) <= 1e-12);
        out.set(0, 0, Cplx::new(123.0, -4.0));
        engine.compute_into(&signal, &mut out).unwrap();
        assert!(out.max_abs_difference(&reference) <= 1e-12);
    }

    #[test]
    fn engine_rejects_bad_inputs() {
        assert!(ScfEngine::new(ScfParams {
            fft_len: 12, // not a power of two
            max_offset: 3,
            num_blocks: 1,
            block_stride: 12,
            window: Window::Rectangular,
        })
        .is_err());
        assert!(ScfEngine::new(ScfParams {
            fft_len: 16,
            max_offset: 8, // 2*8 >= 16
            num_blocks: 1,
            block_stride: 16,
            window: Window::Rectangular,
        })
        .is_err());
        let engine = ScfEngine::new(ScfParams::new(32, 7, 4).unwrap()).unwrap();
        let short = vec![Cplx::ZERO; 10];
        assert!(matches!(
            engine.compute(&short),
            Err(DspError::InsufficientSamples { .. })
        ));
        // Engine equality is parameter equality.
        let other = ScfEngine::new(ScfParams::new(32, 7, 8).unwrap()).unwrap();
        assert_ne!(engine, other);
        assert_eq!(engine, engine.clone());
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn engine_panics_on_short_spectra_blocks() {
        let engine = ScfEngine::new(ScfParams::new(16, 3, 1).unwrap()).unwrap();
        let mut out = ScfMatrix::zeros(3);
        engine.dscf_from_spectra_into(&[vec![Cplx::ZERO; 8]], &mut out);
    }

    #[test]
    fn spectral_coherence_is_in_unit_interval_and_one_for_tone() {
        let k = 64;
        let params = ScfParams::new(k, 15, 8).unwrap();
        let signal = complex_tone(params.samples_needed(), 4.0, k as f64, 0.0);
        let scf = dscf_reference(&signal, &params).unwrap();
        for f in -15..=15 {
            for a in -15..=15 {
                let c = spectral_coherence(&scf, f, a);
                assert!((0.0..=1.0).contains(&c));
            }
        }
        // A pure tone at bin 4 correlates perfectly between bins 4+0 and 4-0.
        assert!(spectral_coherence(&scf, 4, 0) > 0.99);
    }

    /// Both incremental accumulation orders — block-at-a-time adds and the
    /// fused window re-sum — finalise to the exact bits of the batch
    /// kernel, including with overlapping blocks.
    #[test]
    fn incremental_accumulation_is_bitwise_equal_to_batch() {
        let params = ScfParams::new(32, 7, 6).unwrap().with_stride(24);
        let engine = ScfEngine::new(params.clone()).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, 42);
        let spectra = engine.compute_spectra(&signal).unwrap();
        let mut batch = ScfMatrix::zeros(params.max_offset);
        engine.dscf_from_spectra_into(&spectra, &mut batch);

        let mut acc = engine.accumulator();
        for block in &spectra {
            engine.accumulate_block(block, &mut acc);
        }
        let mut one_at_a_time = ScfMatrix::zeros(params.max_offset);
        engine.finalize_accumulator(&acc, spectra.len(), &mut one_at_a_time);
        assert_eq!(one_at_a_time.as_slice(), batch.as_slice());

        // The fused re-sum overwrites whatever the accumulator held.
        let refs: Vec<&[Cplx]> = spectra.iter().map(|b| b.as_slice()).collect();
        engine.accumulate_window(&refs, &mut acc);
        let mut windowed = ScfMatrix::zeros(params.max_offset);
        engine.finalize_accumulator(&acc, spectra.len(), &mut windowed);
        assert_eq!(windowed.as_slice(), batch.as_slice());
    }

    /// Retiring blocks removes exactly what adding them contributed, up to
    /// the `(acc + t) − t` associativity residue.
    #[test]
    fn retiring_blocks_reverts_their_contribution() {
        let params = ScfParams::new(32, 7, 6).unwrap();
        let engine = ScfEngine::new(params.clone()).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, 7);
        let spectra = engine.compute_spectra(&signal).unwrap();

        let mut acc = engine.accumulator();
        let refs: Vec<&[Cplx]> = spectra.iter().map(|b| b.as_slice()).collect();
        engine.accumulate_window(&refs, &mut acc);
        engine.retire_block(&spectra[0], &mut acc);
        engine.retire_block(&spectra[1], &mut acc);
        let mut rolled = ScfMatrix::zeros(params.max_offset);
        engine.finalize_accumulator(&acc, 4, &mut rolled);

        let mut tail = engine.accumulator();
        engine.accumulate_window(&refs[2..], &mut tail);
        let mut exact = ScfMatrix::zeros(params.max_offset);
        engine.finalize_accumulator(&tail, 4, &mut exact);
        assert!(rolled.max_abs_difference(&exact) <= 1e-12);

        // An empty window resets the accumulation entirely.
        engine.accumulate_window(&[], &mut acc);
        let mut zeroed = ScfMatrix::zeros(params.max_offset);
        engine.finalize_accumulator(&acc, 4, &mut zeroed);
        assert_eq!(zeroed.max_magnitude(), 0.0);
    }

    /// Cached per-block contribution planes (single-block
    /// `accumulate_window` + `add_assign`/`sub_assign`) track the direct
    /// segment passes.
    #[test]
    fn contribution_planes_compose_like_segment_passes() {
        let params = ScfParams::new(32, 7, 4).unwrap();
        let engine = ScfEngine::new(params.clone()).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, 13);
        let spectra = engine.compute_spectra(&signal).unwrap();

        let mut direct = engine.accumulator();
        let mut planes = engine.accumulator();
        let mut plane = engine.accumulator();
        for block in &spectra {
            engine.accumulate_block(block, &mut direct);
            engine.accumulate_window(&[block.as_slice()], &mut plane);
            planes.add_assign(&plane);
        }
        let mut a = ScfMatrix::zeros(params.max_offset);
        let mut b = ScfMatrix::zeros(params.max_offset);
        engine.finalize_accumulator(&direct, 4, &mut a);
        engine.finalize_accumulator(&planes, 4, &mut b);
        assert!(a.max_abs_difference(&b) <= 1e-12);
        assert!(ScfAccumulator::bytes_for(params.max_offset) > 0);

        engine.accumulate_window(&[spectra[3].as_slice()], &mut plane);
        planes.sub_assign(&plane);
        planes.reset();
        assert_eq!(planes, engine.accumulator());
    }

    /// The accumulator-side profile scan replicates the finalize
    /// arithmetic, so it matches finalize-then-scan bit-for-bit — the
    /// guarantee the streaming fast path's exact-refresh hops rest on.
    #[test]
    fn accumulator_profile_is_bitwise_equal_to_finalized_scan() {
        let params = ScfParams::new(32, 7, 6).unwrap().with_stride(24);
        let engine = ScfEngine::new(params.clone()).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, 21);
        let spectra = engine.compute_spectra(&signal).unwrap();
        let refs: Vec<&[Cplx]> = spectra.iter().map(|b| b.as_slice()).collect();
        let mut acc = engine.accumulator();
        engine.accumulate_window(&refs, &mut acc);

        let mut matrix = ScfMatrix::zeros(params.max_offset);
        engine.finalize_accumulator(&acc, spectra.len(), &mut matrix);
        let via_matrix = matrix.cyclic_profile();

        let mut direct = Vec::new();
        engine.cyclic_profile_from_accumulator(&acc, spectra.len(), &mut direct);
        assert_eq!(direct.len(), params.grid_size());
        assert!(via_matrix
            .iter()
            .zip(&direct)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    #[should_panic(expected = "does not match the engine grid")]
    fn mismatched_accumulator_grids_panic() {
        let engine = ScfEngine::new(ScfParams::new(32, 7, 1).unwrap()).unwrap();
        let other = ScfEngine::new(ScfParams::new(32, 5, 1).unwrap()).unwrap();
        let mut acc = other.accumulator();
        engine.accumulate_block(&[Cplx::ZERO; 32], &mut acc);
    }
}
