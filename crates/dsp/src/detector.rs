//! Spectrum-sensing detectors.
//!
//! Section 1 of the paper positions Cyclostationary Feature Detection (CFD)
//! as "the most promising but computationally intensive alternative" among
//! the spectrum-sensing options of Cabric et al. \[7\], the simplest of which
//! is the energy detector. Section 2 describes CFD as "a combination of an
//! energy detector and a single correlator block".
//!
//! This module implements both:
//!
//! * [`EnergyDetector`] — the baseline: compares the average received power
//!   against a threshold derived from the noise floor.
//! * [`CyclostationaryDetector`] — the paper's application: evaluates the
//!   DSCF and thresholds the strongest cyclic feature (offset `a ≠ 0`)
//!   relative to the `a = 0` ridge, which makes the statistic insensitive to
//!   the absolute noise level (the classic robustness argument for CFD).

use crate::complex::Cplx;
use crate::error::DspError;
use crate::scf::{ScfEngine, ScfMatrix, ScfParams};
use crate::signal::signal_power;

/// The binary verdict of a detection decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Verdict {
    /// The band is declared occupied by a licensed user.
    SignalPresent,
    /// The band is declared vacant.
    NoiseOnly,
}

impl Verdict {
    /// Convenience conversion to a boolean ("signal present?").
    pub fn is_signal(self) -> bool {
        matches!(self, Verdict::SignalPresent)
    }
}

/// The result of running a detector on one observation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectionOutcome {
    /// The scalar test statistic that was compared against the threshold.
    pub statistic: f64,
    /// The threshold used.
    pub threshold: f64,
    /// The resulting decision.
    pub decision: Verdict,
}

/// A recipe for building independent detector replicas.
///
/// Detectors are stateful objects (thresholds, calibration, and — for the
/// platform-backed paths — whole simulated SoCs), so a single instance
/// forces every decision through one `&mut` borrow and serialises
/// Monte-Carlo sweeps. A factory is the shareable description from which
/// each worker thread builds its own replica; replicas built from the same
/// factory must produce identical decisions for identical observations, so
/// any partition of a trial set over replicas yields the same counts as a
/// single detector run serially.
pub trait DetectorFactory {
    /// The detector type this factory builds.
    type Built: Detector;

    /// Builds one independent replica.
    ///
    /// # Errors
    ///
    /// Propagates construction errors of the underlying detector.
    fn build_detector(&self) -> Result<Self::Built, DspError>;
}

/// Every cloneable detector is its own factory: a clone is a fully
/// independent replica because the golden-model detectors carry only
/// configuration, no per-observation state.
impl<D: Detector + Clone> DetectorFactory for D {
    type Built = D;

    fn build_detector(&self) -> Result<D, DspError> {
        Ok(self.clone())
    }
}

/// Trait implemented by spectrum-sensing detectors.
pub trait Detector {
    /// Computes the detector's scalar test statistic for an observation.
    ///
    /// # Errors
    ///
    /// Returns a [`DspError`] if the observation is too short or otherwise
    /// unusable for this detector.
    fn statistic(&self, samples: &[Cplx]) -> Result<f64, DspError>;

    /// The decision threshold.
    fn threshold(&self) -> f64;

    /// Runs the full detection: statistic, comparison, decision.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Detector::statistic`].
    fn detect(&self, samples: &[Cplx]) -> Result<DetectionOutcome, DspError> {
        let statistic = self.statistic(samples)?;
        let threshold = self.threshold();
        Ok(DetectionOutcome {
            statistic,
            threshold,
            decision: if statistic > threshold {
                Verdict::SignalPresent
            } else {
                Verdict::NoiseOnly
            },
        })
    }
}

/// Baseline energy detector.
///
/// The statistic is the average received power normalised by the assumed
/// noise power; the threshold is set from the target false-alarm rate using
/// the Gaussian approximation of the chi-square statistic (valid for the
/// thousands-of-samples observations used here).
///
/// # Examples
///
/// ```
/// use cfd_dsp::detector::{Detector, EnergyDetector};
/// use cfd_dsp::signal::SignalBuilder;
///
/// # fn main() -> Result<(), cfd_dsp::error::DspError> {
/// let detector = EnergyDetector::new(1.0, 0.01, 4096)?;
/// let busy = SignalBuilder::new(4096).snr_db(3.0).seed(1).build()?;
/// assert!(detector.detect(&busy.samples)?.decision.is_signal());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyDetector {
    noise_power: f64,
    threshold: f64,
    num_samples: usize,
}

impl EnergyDetector {
    /// Creates an energy detector calibrated for observations of
    /// `num_samples` samples with known `noise_power`, targeting the given
    /// false-alarm probability.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the noise power is not
    /// positive, the false-alarm probability is not in `(0, 1)`, or
    /// `num_samples` is zero.
    pub fn new(noise_power: f64, false_alarm: f64, num_samples: usize) -> Result<Self, DspError> {
        if !(noise_power.is_finite() && noise_power > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "noise_power",
                message: format!("must be positive and finite, got {noise_power}"),
            });
        }
        if !(false_alarm > 0.0 && false_alarm < 1.0) {
            return Err(DspError::InvalidParameter {
                name: "false_alarm",
                message: format!("must be in (0, 1), got {false_alarm}"),
            });
        }
        if num_samples == 0 {
            return Err(DspError::InvalidParameter {
                name: "num_samples",
                message: "must be at least 1".into(),
            });
        }
        // Under H0 the normalised statistic has mean 1 and std 1/sqrt(N)
        // (complex samples: |x|^2/sigma^2 is Exp(1), variance 1).
        let threshold = 1.0 + inverse_q(false_alarm) / (num_samples as f64).sqrt();
        Ok(EnergyDetector {
            noise_power,
            threshold,
            num_samples,
        })
    }

    /// Creates an energy detector with an explicitly chosen threshold on the
    /// normalised power statistic.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the noise power is not
    /// positive and finite.
    pub fn with_threshold(noise_power: f64, threshold: f64) -> Result<Self, DspError> {
        if !(noise_power.is_finite() && noise_power > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "noise_power",
                message: format!("must be positive and finite, got {noise_power}"),
            });
        }
        Ok(EnergyDetector {
            noise_power,
            threshold,
            num_samples: 0,
        })
    }

    /// The noise power the detector was calibrated with.
    pub fn noise_power(&self) -> f64 {
        self.noise_power
    }

    /// Number of samples the threshold was calibrated for (0 when the
    /// threshold was set explicitly).
    pub fn calibrated_samples(&self) -> usize {
        self.num_samples
    }
}

impl Detector for EnergyDetector {
    fn statistic(&self, samples: &[Cplx]) -> Result<f64, DspError> {
        if samples.is_empty() {
            return Err(DspError::InsufficientSamples {
                needed: 1,
                available: 0,
            });
        }
        Ok(signal_power(samples) / self.noise_power)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// Cyclostationary feature detector operating on the DSCF.
///
/// The statistic is the strongest cyclic feature outside an exclusion zone
/// around `a = 0`, normalised by the strength of the `a = 0` ridge:
///
/// ```text
/// stat = max_{|a| > guard} max_f |S_f^a|  /  max_f |S_f^0|
/// ```
///
/// Because both numerator and denominator scale with the received power, the
/// statistic does not depend on the absolute noise level — the property that
/// makes CFD attractive when the noise floor is uncertain.
///
/// The detector owns an [`ScfEngine`]: the FFT plan, window coefficients and
/// DSCF index tables are built once at construction and reused by every
/// decision (the engine is bit-identical to the eq.-3 golden model).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CyclostationaryDetector {
    engine: ScfEngine,
    threshold: f64,
    guard_offsets: usize,
}

impl CyclostationaryDetector {
    /// Creates a CFD detector with the given DSCF parameters and threshold
    /// on the normalised feature strength.
    ///
    /// `guard_offsets` excludes offsets `|a| <= guard_offsets` from the
    /// feature search (the `a = 0` ridge and its leakage).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the parameters are invalid
    /// or the guard zone swallows the whole grid.
    pub fn new(params: ScfParams, threshold: f64, guard_offsets: usize) -> Result<Self, DspError> {
        params.validate()?;
        if guard_offsets >= params.max_offset {
            return Err(DspError::InvalidParameter {
                name: "guard_offsets",
                message: format!(
                    "guard ({guard_offsets}) must be smaller than max_offset ({})",
                    params.max_offset
                ),
            });
        }
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "threshold",
                message: format!("must be positive and finite, got {threshold}"),
            });
        }
        Ok(CyclostationaryDetector {
            engine: ScfEngine::new(params)?,
            threshold,
            guard_offsets,
        })
    }

    /// The DSCF parameters this detector evaluates.
    pub fn params(&self) -> &ScfParams {
        self.engine.params()
    }

    /// The precomputed DSCF engine this detector evaluates with. Sweep
    /// drivers use it to compute block spectra once per observation and
    /// share them across detector replicas.
    pub fn engine(&self) -> &ScfEngine {
        &self.engine
    }

    /// The guard zone half-width around `a = 0`.
    pub fn guard_offsets(&self) -> usize {
        self.guard_offsets
    }

    /// Computes the normalised feature statistic from an already-computed
    /// DSCF matrix (e.g. one produced by the tiled-SoC simulation).
    pub fn statistic_from_scf(&self, scf: &ScfMatrix) -> f64 {
        feature_statistic(scf, self.guard_offsets)
    }

    /// Runs the decision on an already-computed DSCF matrix.
    pub fn detect_from_scf(&self, scf: &ScfMatrix) -> DetectionOutcome {
        let statistic = self.statistic_from_scf(scf);
        self.outcome(statistic)
    }

    /// Computes the normalised feature statistic from an already-computed
    /// cyclic-domain profile ([`ScfMatrix::cyclic_profile`] layout). The
    /// statistic depends on the DSCF only through its profile, so this is
    /// bit-identical to [`CyclostationaryDetector::statistic_from_scf`] on
    /// the matrix the profile was scanned from.
    pub fn statistic_from_profile(&self, profile: &[f64]) -> f64 {
        feature_statistic_from_profile(profile, self.guard_offsets)
    }

    /// Runs the decision on an already-computed cyclic-domain profile —
    /// the streaming fast path, which never materialises the full matrix.
    pub fn detect_from_profile(&self, profile: &[f64]) -> DetectionOutcome {
        let statistic = self.statistic_from_profile(profile);
        self.outcome(statistic)
    }

    /// Runs the decision on precomputed block spectra (eq. 2), e.g. the
    /// shared spectra a sweep engine computed once per trial. Decisions are
    /// identical to [`Detector::detect`] on the raw samples: the engine's
    /// spectra path is bit-identical to the one `detect` uses.
    ///
    /// # Panics
    ///
    /// Panics if any block is shorter than `params().fft_len`.
    pub fn detect_from_spectra(&self, spectra: &[Vec<Cplx>]) -> DetectionOutcome {
        let mut scf = ScfMatrix::zeros(self.params().max_offset);
        self.detect_from_spectra_into(spectra, &mut scf)
    }

    /// [`CyclostationaryDetector::detect_from_spectra`] with a
    /// caller-provided scratch matrix, so sweeps reuse one DSCF allocation
    /// across all trials.
    ///
    /// # Panics
    ///
    /// Panics if any block is shorter than `params().fft_len`.
    pub fn detect_from_spectra_into(
        &self,
        spectra: &[Vec<Cplx>],
        scratch: &mut ScfMatrix,
    ) -> DetectionOutcome {
        self.engine.dscf_from_spectra_into(spectra, scratch);
        self.detect_from_scf(scratch)
    }

    /// [`Detector::detect`] with a caller-provided scratch matrix.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. too few samples).
    pub fn detect_into(
        &self,
        samples: &[Cplx],
        scratch: &mut ScfMatrix,
    ) -> Result<DetectionOutcome, DspError> {
        self.engine.compute_into(samples, scratch)?;
        Ok(self.detect_from_scf(scratch))
    }

    fn outcome(&self, statistic: f64) -> DetectionOutcome {
        DetectionOutcome {
            statistic,
            threshold: self.threshold,
            decision: if statistic > self.threshold {
                Verdict::SignalPresent
            } else {
                Verdict::NoiseOnly
            },
        }
    }
}

impl Detector for CyclostationaryDetector {
    fn statistic(&self, samples: &[Cplx]) -> Result<f64, DspError> {
        let scf = self.engine.compute(samples)?;
        Ok(self.statistic_from_scf(&scf))
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// The normalised cyclic-feature statistic used by
/// [`CyclostationaryDetector`]: strongest feature outside the guard zone,
/// divided by the strength of the `a = 0` ridge.
pub fn feature_statistic(scf: &ScfMatrix, guard_offsets: usize) -> f64 {
    feature_statistic_from_profile(&scf.cyclic_profile(), guard_offsets)
}

/// [`feature_statistic`] on a precomputed cyclic-domain profile
/// ([`ScfMatrix::cyclic_profile`] layout: `2M + 1` entries, offset `a` at
/// index `a + M`).
///
/// # Panics
///
/// Panics if `profile` has an even length (no centre `a = 0` element).
pub fn feature_statistic_from_profile(profile: &[f64], guard_offsets: usize) -> f64 {
    assert!(
        profile.len() % 2 == 1,
        "cyclic profile must have odd length (2M + 1)"
    );
    let m = (profile.len() / 2) as i32;
    let ridge = profile[m as usize].max(f64::MIN_POSITIVE);
    let mut best = 0.0f64;
    for (i, &value) in profile.iter().enumerate() {
        let a = i as i32 - m;
        if a.unsigned_abs() as usize > guard_offsets {
            best = best.max(value);
        }
    }
    best / ridge
}

/// The approximate inverse of the Gaussian Q-function
/// (`Q(x) = P[N(0,1) > x]`), accurate to about 4.5e-4 over `(0, 0.5]`
/// (Abramowitz & Stegun 26.2.23). Used to set energy-detector thresholds.
pub fn inverse_q(probability: f64) -> f64 {
    assert!(
        probability > 0.0 && probability < 1.0,
        "probability must be in (0, 1)"
    );
    if probability == 0.5 {
        return 0.0;
    }
    if probability > 0.5 {
        return -inverse_q(1.0 - probability);
    }
    let t = (-2.0 * probability.ln()).sqrt();
    let numerator = 2.30753 + 0.27061 * t;
    let denominator = 1.0 + 0.99229 * t + 0.04481 * t * t;
    t - numerator / denominator
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::dscf_reference;
    use crate::signal::{SignalBuilder, SymbolModulation};

    fn busy_observation(snr_db: f64, len: usize, seed: u64) -> Vec<Cplx> {
        SignalBuilder::new(len)
            .modulation(SymbolModulation::Bpsk)
            .samples_per_symbol(4)
            .snr_db(snr_db)
            .seed(seed)
            .build()
            .unwrap()
            .samples
    }

    fn idle_observation(len: usize, seed: u64) -> Vec<Cplx> {
        SignalBuilder::new(len)
            .noise_only()
            .seed(seed)
            .build()
            .unwrap()
            .samples
    }

    #[test]
    fn inverse_q_matches_known_values() {
        // Q(1.2816) ≈ 0.10, Q(2.3263) ≈ 0.01, Q(0) = 0.5.
        assert!((inverse_q(0.10) - 1.2816).abs() < 5e-3);
        assert!((inverse_q(0.01) - 2.3263).abs() < 5e-3);
        assert!(inverse_q(0.5).abs() < 5e-3);
        assert!((inverse_q(0.9) + inverse_q(0.1)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn inverse_q_rejects_out_of_range() {
        inverse_q(0.0);
    }

    #[test]
    fn energy_detector_validates_parameters() {
        assert!(EnergyDetector::new(0.0, 0.1, 100).is_err());
        assert!(EnergyDetector::new(1.0, 0.0, 100).is_err());
        assert!(EnergyDetector::new(1.0, 1.0, 100).is_err());
        assert!(EnergyDetector::new(1.0, 0.1, 0).is_err());
        assert!(EnergyDetector::with_threshold(-1.0, 1.0).is_err());
        let d = EnergyDetector::new(2.0, 0.1, 100).unwrap();
        assert_eq!(d.noise_power(), 2.0);
        assert_eq!(d.calibrated_samples(), 100);
    }

    #[test]
    fn energy_detector_detects_strong_signal_and_not_noise() {
        let d = EnergyDetector::new(1.0, 0.01, 4096).unwrap();
        let busy = busy_observation(5.0, 4096, 1);
        let idle = idle_observation(4096, 2);
        assert!(d.detect(&busy).unwrap().decision.is_signal());
        assert!(!d.detect(&idle).unwrap().decision.is_signal());
        assert!(d.detect(&[]).is_err());
    }

    #[test]
    fn energy_detector_false_alarm_rate_is_roughly_calibrated() {
        let pfa_target = 0.05;
        let n = 2048;
        let d = EnergyDetector::new(1.0, pfa_target, n).unwrap();
        let trials = 400;
        let mut false_alarms = 0;
        for seed in 0..trials {
            let idle = idle_observation(n, 1000 + seed);
            if d.detect(&idle).unwrap().decision.is_signal() {
                false_alarms += 1;
            }
        }
        let pfa = false_alarms as f64 / trials as f64;
        assert!(pfa < 0.15, "pfa = {pfa}");
    }

    #[test]
    fn cfd_detector_validates_parameters() {
        let params = ScfParams::new(32, 7, 16).unwrap();
        assert!(CyclostationaryDetector::new(params.clone(), 0.3, 7).is_err());
        assert!(CyclostationaryDetector::new(params.clone(), 0.0, 1).is_err());
        assert!(CyclostationaryDetector::new(params.clone(), f64::NAN, 1).is_err());
        let d = CyclostationaryDetector::new(params, 0.3, 1).unwrap();
        assert_eq!(d.guard_offsets(), 1);
        assert_eq!(d.params().fft_len, 32);
    }

    #[test]
    fn cfd_detects_cyclostationary_signal_and_rejects_noise() {
        let params = ScfParams::new(32, 7, 64).unwrap();
        let d = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
        let busy = busy_observation(5.0, params.samples_needed(), 3);
        let idle = idle_observation(params.samples_needed(), 4);
        let busy_out = d.detect(&busy).unwrap();
        let idle_out = d.detect(&idle).unwrap();
        assert!(
            busy_out.decision.is_signal(),
            "statistic {}",
            busy_out.statistic
        );
        assert!(
            !idle_out.decision.is_signal(),
            "statistic {}",
            idle_out.statistic
        );
        assert!(busy_out.statistic > idle_out.statistic);
    }

    #[test]
    fn cfd_statistic_is_scale_invariant() {
        let params = ScfParams::new(32, 7, 32).unwrap();
        let d = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
        let busy = busy_observation(3.0, params.samples_needed(), 5);
        let scaled: Vec<Cplx> = busy.iter().map(|&x| x * 7.5).collect();
        let s1 = d.statistic(&busy).unwrap();
        let s2 = d.statistic(&scaled).unwrap();
        assert!((s1 - s2).abs() < 1e-9, "{s1} vs {s2}");
    }

    #[test]
    fn detect_from_scf_matches_detect_from_samples() {
        let params = ScfParams::new(32, 7, 32).unwrap();
        let d = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
        let busy = busy_observation(3.0, params.samples_needed(), 6);
        let scf = dscf_reference(&busy, &params).unwrap();
        let from_scf = d.detect_from_scf(&scf);
        let from_samples = d.detect(&busy).unwrap();
        assert_eq!(from_scf, from_samples);
    }

    #[test]
    fn detect_from_spectra_matches_detect_from_samples() {
        let params = ScfParams::new(32, 7, 32).unwrap();
        let d = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
        for seed in [7u64, 8, 9] {
            let busy = busy_observation(0.0, params.samples_needed(), seed);
            let spectra = d.engine().compute_spectra(&busy).unwrap();
            let from_samples = d.detect(&busy).unwrap();
            assert_eq!(d.detect_from_spectra(&spectra), from_samples);
            // The scratch-reusing path is identical too, even with a dirty
            // wrong-sized scratch matrix.
            let mut scratch = ScfMatrix::zeros(2);
            assert_eq!(
                d.detect_from_spectra_into(&spectra, &mut scratch),
                from_samples
            );
            assert_eq!(d.detect_into(&busy, &mut scratch).unwrap(), from_samples);
        }
    }

    #[test]
    fn decision_helpers() {
        assert!(Verdict::SignalPresent.is_signal());
        assert!(!Verdict::NoiseOnly.is_signal());
    }

    #[test]
    fn cloneable_detectors_are_their_own_factories() {
        let params = ScfParams::new(32, 7, 32).unwrap();
        let cfd = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
        let energy = EnergyDetector::new(1.0, 0.05, params.samples_needed()).unwrap();
        let busy = busy_observation(3.0, params.samples_needed(), 5);
        // Replicas decide identically to the factory instance.
        let cfd_replica = cfd.build_detector().unwrap();
        let energy_replica = energy.build_detector().unwrap();
        assert_eq!(
            cfd.detect(&busy).unwrap(),
            cfd_replica.detect(&busy).unwrap()
        );
        assert_eq!(
            energy.detect(&busy).unwrap(),
            energy_replica.detect(&busy).unwrap()
        );
    }
}
