//! # `cfd-dsp` — DSP substrate for Cyclostationary Feature Detection
//!
//! This crate is the signal-processing foundation of the reproduction of
//! *"Cyclostationary Feature Detection on a tiled-SoC"* (Kokkeler, Smit,
//! Krol, Kuper — DATE 2007). It provides, entirely from scratch:
//!
//! * complex and Q15 fixed-point arithmetic ([`complex`], [`fixed`]),
//! * the block DFT/FFT of eq. 2 ([`fft`], [`window`]),
//! * cognitive-radio signal generators — modulated licensed-user signals and
//!   AWGN channels ([`signal`]),
//! * the Discrete Spectral Correlation Function of eq. 3 and its golden-model
//!   evaluation ([`scf`]),
//! * the energy-detector baseline and the cyclostationary feature detector
//!   ([`detector`]), and Monte-Carlo detection metrics ([`metrics`]).
//!
//! Everything downstream — the array-processor mapping (`cfd-mapping`), the
//! Montium tile simulator (`montium-sim`), the tiled SoC (`tiled-soc`) and
//! the two-step methodology (`cfd-core`) — validates its results against the
//! golden models in this crate.
//!
//! ## Quick example
//!
//! ```
//! use cfd_dsp::prelude::*;
//!
//! # fn main() -> Result<(), cfd_dsp::error::DspError> {
//! // A BPSK licensed user at 0 dB SNR, observed for 64 blocks of 32 samples.
//! let params = ScfParams::new(32, 7, 64)?;
//! let observation = SignalBuilder::new(params.samples_needed())
//!     .modulation(SymbolModulation::Bpsk)
//!     .samples_per_symbol(4)
//!     .snr_db(0.0)
//!     .seed(8)
//!     .build()?;
//!
//! // Evaluate the DSCF (eq. 3) and look for cyclic features.
//! let scf = dscf_reference(&observation.samples, &params)?;
//! let detector = CyclostationaryDetector::new(params, 0.35, 1)?;
//! let outcome = detector.detect_from_scf(&scf);
//! assert!(outcome.decision.is_signal());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complex;
pub mod detector;
pub mod error;
pub mod fft;
pub mod fixed;
pub mod metrics;
pub mod scf;
pub mod signal;
pub mod window;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::complex::{Cplx, CplxQ15};
    pub use crate::detector::{
        CyclostationaryDetector, DetectionOutcome, Detector, DetectorFactory, EnergyDetector,
        Verdict,
    };
    pub use crate::error::DspError;
    pub use crate::fft::{fft, fft_in_place, ifft, ifft_in_place, FftPlan};
    pub use crate::fixed::Q15;
    pub use crate::metrics::{OperatingPoint, RocCurve, Scenario};
    pub use crate::scf::{dscf_from_spectra, dscf_reference, ScfEngine, ScfMatrix, ScfParams};
    pub use crate::signal::{
        awgn, complex_tone, frequency_shift, modulated_signal, ModulatedSignalSpec, Observation,
        SignalBuilder, SymbolModulation,
    };
    pub use crate::window::Window;
}

pub use complex::Cplx;
pub use error::DspError;
pub use scf::{ScfMatrix, ScfParams};
