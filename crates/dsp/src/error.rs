//! Error types for the DSP substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the DSP substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// A transform length was not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        length: usize,
    },
    /// Not enough samples were available for the requested operation.
    InsufficientSamples {
        /// Number of samples required.
        needed: usize,
        /// Number of samples available.
        available: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A frequency/offset index was outside the spectrum.
    IndexOutOfRange {
        /// Description of the index (e.g. "frequency f").
        what: &'static str,
        /// The offending value.
        value: i64,
        /// Lowest admissible value.
        min: i64,
        /// Highest admissible value.
        max: i64,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::NotPowerOfTwo { length } => {
                write!(f, "transform length {length} is not a power of two")
            }
            DspError::InsufficientSamples { needed, available } => write!(
                f,
                "insufficient samples: {needed} needed but only {available} available"
            ),
            DspError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            DspError::IndexOutOfRange {
                what,
                value,
                min,
                max,
            } => write!(f, "{what} = {value} outside valid range [{min}, {max}]"),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DspError::NotPowerOfTwo { length: 12 };
        assert!(e.to_string().contains("12"));
        let e = DspError::InsufficientSamples {
            needed: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('4'));
        let e = DspError::InvalidParameter {
            name: "snr",
            message: "must be finite".into(),
        };
        assert!(e.to_string().contains("snr"));
        let e = DspError::IndexOutOfRange {
            what: "frequency f",
            value: 99,
            min: -63,
            max: 63,
        };
        assert!(e.to_string().contains("99") && e.to_string().contains("-63"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(DspError::NotPowerOfTwo { length: 3 });
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
