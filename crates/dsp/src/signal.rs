//! Signal generators for the cognitive-radio spectrum-sensing scenario.
//!
//! Cyclostationary feature detection exploits "the periodicity that
//! especially communication signals exhibit" (Section 1 of the paper):
//! digitally modulated signals such as BPSK/QPSK carry hidden periodicities
//! at multiples of their symbol rate and (for real carriers) at twice the
//! carrier frequency, which show up as non-zero cyclic frequencies `a` in
//! the spectral correlation function while stationary noise does not.
//!
//! This module generates the licensed-user waveforms and channel impairments
//! used by the examples, tests and benches:
//!
//! * [`complex_tone`], [`real_carrier`] — deterministic carriers,
//! * [`SymbolModulation`] + [`modulated_signal`] — BPSK/QPSK/AM pulse-train
//!   signals with a configurable symbol length,
//! * [`awgn`] — complex additive white Gaussian noise,
//! * [`SignalBuilder`] — composes signal plus noise at a prescribed SNR.

use crate::complex::Cplx;
use crate::error::DspError;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Generates a unit-amplitude complex exponential `exp(j·2π·f·t/fs)`.
///
/// `frequency` and `sample_rate` are in the same unit (e.g. Hz).
pub fn complex_tone(len: usize, frequency: f64, sample_rate: f64, phase: f64) -> Vec<Cplx> {
    (0..len)
        .map(|t| Cplx::cis(2.0 * PI * frequency * t as f64 / sample_rate + phase))
        .collect()
}

/// Generates a real cosine carrier (as a complex signal with zero imaginary
/// part). Real carriers produce conjugate cyclostationarity at `±2·f_c`.
pub fn real_carrier(len: usize, frequency: f64, sample_rate: f64, phase: f64) -> Vec<Cplx> {
    (0..len)
        .map(|t| {
            Cplx::new(
                (2.0 * PI * frequency * t as f64 / sample_rate + phase).cos(),
                0.0,
            )
        })
        .collect()
}

/// Digital modulation formats for the licensed-user signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SymbolModulation {
    /// Binary phase-shift keying: symbols in `{+1, -1}`.
    Bpsk,
    /// Quadrature phase-shift keying: symbols in `{±1 ± j}/√2`.
    Qpsk,
    /// On-off keying / amplitude modulation: symbols in `{0, 1}`.
    Ook,
}

impl SymbolModulation {
    /// Draws one random symbol of this constellation.
    pub fn random_symbol<R: Rng + ?Sized>(self, rng: &mut R) -> Cplx {
        match self {
            SymbolModulation::Bpsk => {
                if rng.gen::<bool>() {
                    Cplx::ONE
                } else {
                    -Cplx::ONE
                }
            }
            SymbolModulation::Qpsk => {
                let re = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let im = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                Cplx::new(re, im) / std::f64::consts::SQRT_2
            }
            SymbolModulation::Ook => {
                if rng.gen::<bool>() {
                    Cplx::ONE
                } else {
                    Cplx::ZERO
                }
            }
        }
    }
}

/// Parameters of a pulse-train modulated signal.
///
/// The signal is `s[t] = A · c[floor(t / symbol_len)] · exp(j·2π·f_c·t/fs)`
/// with independent random symbols `c[·]`. The rectangular symbol pulse makes
/// the signal cyclostationary with cycle frequency `fs / symbol_len` (and its
/// harmonics).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModulatedSignalSpec {
    /// Modulation format.
    pub modulation: SymbolModulation,
    /// Samples per symbol (the cyclic period in samples).
    pub samples_per_symbol: usize,
    /// Carrier frequency (same unit as `sample_rate`).
    pub carrier_frequency: f64,
    /// Sampling frequency.
    pub sample_rate: f64,
    /// Amplitude of the signal.
    pub amplitude: f64,
}

impl Default for ModulatedSignalSpec {
    fn default() -> Self {
        ModulatedSignalSpec {
            modulation: SymbolModulation::Bpsk,
            samples_per_symbol: 8,
            carrier_frequency: 0.0,
            sample_rate: 1.0,
            amplitude: 1.0,
        }
    }
}

/// Generates a modulated pulse-train signal per `spec`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `samples_per_symbol` is zero or
/// the amplitude/sample-rate are not positive finite numbers.
pub fn modulated_signal(
    len: usize,
    spec: &ModulatedSignalSpec,
    seed: u64,
) -> Result<Vec<Cplx>, DspError> {
    if spec.samples_per_symbol == 0 {
        return Err(DspError::InvalidParameter {
            name: "samples_per_symbol",
            message: "must be at least 1".into(),
        });
    }
    if !(spec.sample_rate.is_finite() && spec.sample_rate > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "sample_rate",
            message: format!("must be positive and finite, got {}", spec.sample_rate),
        });
    }
    if !(spec.amplitude.is_finite() && spec.amplitude >= 0.0) {
        return Err(DspError::InvalidParameter {
            name: "amplitude",
            message: format!("must be non-negative and finite, got {}", spec.amplitude),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n_symbols = len.div_ceil(spec.samples_per_symbol);
    let symbols: Vec<Cplx> = (0..n_symbols)
        .map(|_| spec.modulation.random_symbol(&mut rng))
        .collect();
    Ok((0..len)
        .map(|t| {
            let symbol = symbols[t / spec.samples_per_symbol];
            let carrier =
                Cplx::cis(2.0 * PI * spec.carrier_frequency * t as f64 / spec.sample_rate);
            symbol * carrier * spec.amplitude
        })
        .collect())
}

/// Generates complex additive white Gaussian noise with total (complex)
/// variance `variance` — i.e. each of the real and imaginary parts has
/// variance `variance / 2`.
pub fn awgn(len: usize, variance: f64, seed: u64) -> Vec<Cplx> {
    let mut rng = StdRng::seed_from_u64(seed);
    let std_dev = (variance / 2.0).max(0.0).sqrt();
    let normal = GaussianPair { std_dev };
    (0..len).map(|_| normal.sample(&mut rng)).collect()
}

/// Samples a complex Gaussian with independent real/imaginary parts using
/// the Box–Muller transform (keeps the dependency surface to `rand` only).
#[derive(Debug, Clone, Copy)]
struct GaussianPair {
    std_dev: f64,
}

impl Distribution<Cplx> for GaussianPair {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Cplx {
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * PI * u2;
        Cplx::new(
            self.std_dev * radius * angle.cos(),
            self.std_dev * radius * angle.sin(),
        )
    }
}

/// Mixes `signal` with a complex exponential: `y[t] = x[t]·exp(j·(2π·f·t + φ))`
/// with `f` in cycles/sample. Models a carrier/local-oscillator frequency
/// offset between transmitter and receiver.
pub fn frequency_shift(signal: &[Cplx], normalised_frequency: f64, phase: f64) -> Vec<Cplx> {
    signal
        .iter()
        .enumerate()
        .map(|(t, &x)| x * Cplx::cis(2.0 * PI * normalised_frequency * t as f64 + phase))
        .collect()
}

/// Average power (mean squared magnitude) of a signal.
pub fn signal_power(signal: &[Cplx]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().map(|x| x.norm_sqr()).sum::<f64>() / signal.len() as f64
}

/// Scales `signal` so its average power becomes `target_power`.
///
/// A zero-power signal is returned unchanged.
pub fn normalise_power(signal: &[Cplx], target_power: f64) -> Vec<Cplx> {
    let p = signal_power(signal);
    if p == 0.0 {
        return signal.to_vec();
    }
    let gain = (target_power / p).sqrt();
    signal.iter().map(|&x| x * gain).collect()
}

/// Composes a licensed-user signal plus AWGN at a prescribed SNR.
///
/// This is the scenario the paper's introduction motivates: a cognitive
/// radio must decide whether a licensed user occupies the band, at SNRs
/// where an energy detector becomes unreliable.
///
/// # Examples
///
/// ```
/// use cfd_dsp::signal::{SignalBuilder, SymbolModulation};
///
/// # fn main() -> Result<(), cfd_dsp::error::DspError> {
/// let observation = SignalBuilder::new(4096)
///     .modulation(SymbolModulation::Bpsk)
///     .samples_per_symbol(8)
///     .snr_db(0.0)
///     .seed(42)
///     .build()?;
/// assert_eq!(observation.samples.len(), 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SignalBuilder {
    len: usize,
    spec: ModulatedSignalSpec,
    snr_db: Option<f64>,
    signal_present: bool,
    noise_power: f64,
    seed: u64,
}

/// The result of [`SignalBuilder::build`]: the observed samples plus ground
/// truth about what was generated.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The noisy observed samples.
    pub samples: Vec<Cplx>,
    /// Whether a licensed-user signal is present (ground truth).
    pub signal_present: bool,
    /// The SNR (dB) actually realised, `None` for noise-only observations.
    pub snr_db: Option<f64>,
    /// The cyclic frequency (in DFT bins of a `block_len`-point spectrum this
    /// corresponds to `block_len / samples_per_symbol`) at which the symbol
    ///-rate feature is expected, expressed in normalised frequency (cycles
    /// per sample).
    pub symbol_rate_normalised: f64,
}

impl SignalBuilder {
    /// Creates a builder for an observation of `len` samples.
    pub fn new(len: usize) -> Self {
        SignalBuilder {
            len,
            spec: ModulatedSignalSpec::default(),
            snr_db: Some(10.0),
            signal_present: true,
            noise_power: 1.0,
            seed: 0,
        }
    }

    /// Sets the modulation format (default BPSK).
    pub fn modulation(mut self, modulation: SymbolModulation) -> Self {
        self.spec.modulation = modulation;
        self
    }

    /// Sets the symbol length in samples (default 8).
    pub fn samples_per_symbol(mut self, samples: usize) -> Self {
        self.spec.samples_per_symbol = samples;
        self
    }

    /// Sets the carrier frequency in cycles/sample (default 0, baseband).
    pub fn carrier_frequency(mut self, normalised_frequency: f64) -> Self {
        self.spec.carrier_frequency = normalised_frequency;
        self.spec.sample_rate = 1.0;
        self
    }

    /// Sets the signal-to-noise ratio in dB (default 10 dB).
    pub fn snr_db(mut self, snr_db: f64) -> Self {
        self.snr_db = Some(snr_db);
        self
    }

    /// Makes the observation noise-only (hypothesis H0).
    pub fn noise_only(mut self) -> Self {
        self.signal_present = false;
        self
    }

    /// Sets the noise power (default 1.0).
    pub fn noise_power(mut self, power: f64) -> Self {
        self.noise_power = power;
        self
    }

    /// Sets the RNG seed (default 0); the same seed reproduces the same
    /// observation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the observation.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for nonsensical parameters
    /// (zero symbol length, non-finite SNR or noise power).
    pub fn build(&self) -> Result<Observation, DspError> {
        if !(self.noise_power.is_finite() && self.noise_power >= 0.0) {
            return Err(DspError::InvalidParameter {
                name: "noise_power",
                message: format!("must be non-negative and finite, got {}", self.noise_power),
            });
        }
        let noise = awgn(
            self.len,
            self.noise_power,
            self.seed.wrapping_add(0x9E37_79B9),
        );
        if !self.signal_present {
            return Ok(Observation {
                samples: noise,
                signal_present: false,
                snr_db: None,
                symbol_rate_normalised: 0.0,
            });
        }
        let snr_db = self.snr_db.unwrap_or(10.0);
        if !snr_db.is_finite() {
            return Err(DspError::InvalidParameter {
                name: "snr_db",
                message: format!("must be finite, got {snr_db}"),
            });
        }
        let target_signal_power = self.noise_power * 10f64.powf(snr_db / 10.0);
        let clean = modulated_signal(self.len, &self.spec, self.seed)?;
        let clean = normalise_power(&clean, target_signal_power);
        let samples: Vec<Cplx> = clean
            .iter()
            .zip(noise.iter())
            .map(|(&s, &w)| s + w)
            .collect();
        Ok(Observation {
            samples,
            signal_present: true,
            snr_db: Some(snr_db),
            symbol_rate_normalised: 1.0 / self.spec.samples_per_symbol as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_tone_has_unit_magnitude_and_right_frequency() {
        let n = 64;
        let tone = complex_tone(n, 4.0, 64.0, 0.0);
        assert_eq!(tone.len(), n);
        for &x in &tone {
            assert!((x.abs() - 1.0).abs() < 1e-12);
        }
        // One full cycle every 16 samples.
        assert!((tone[0] - tone[16]).abs() < 1e-12);
    }

    #[test]
    fn real_carrier_is_real() {
        let c = real_carrier(32, 3.0, 32.0, 0.5);
        assert!(c.iter().all(|x| x.im == 0.0));
        assert!(c.iter().any(|x| x.re < 0.0));
    }

    #[test]
    fn modulated_signal_is_reproducible_and_piecewise_constant() {
        let spec = ModulatedSignalSpec {
            samples_per_symbol: 4,
            ..Default::default()
        };
        let a = modulated_signal(64, &spec, 7).unwrap();
        let b = modulated_signal(64, &spec, 7).unwrap();
        assert_eq!(a, b);
        // Within a symbol the baseband BPSK signal is constant.
        for s in 0..16 {
            for k in 1..4 {
                assert_eq!(a[4 * s], a[4 * s + k]);
            }
        }
        // Different seeds give different symbol sequences (overwhelmingly likely).
        let c = modulated_signal(64, &spec, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn modulated_signal_rejects_bad_parameters() {
        let mut spec = ModulatedSignalSpec {
            samples_per_symbol: 0,
            ..Default::default()
        };
        assert!(modulated_signal(16, &spec, 0).is_err());
        spec.samples_per_symbol = 4;
        spec.sample_rate = 0.0;
        assert!(modulated_signal(16, &spec, 0).is_err());
        spec.sample_rate = 1.0;
        spec.amplitude = f64::NAN;
        assert!(modulated_signal(16, &spec, 0).is_err());
    }

    #[test]
    fn qpsk_and_ook_symbols_are_from_their_constellations() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let q = SymbolModulation::Qpsk.random_symbol(&mut rng);
            assert!((q.abs() - 1.0).abs() < 1e-12);
            let o = SymbolModulation::Ook.random_symbol(&mut rng);
            assert!(o == Cplx::ZERO || o == Cplx::ONE);
            let b = SymbolModulation::Bpsk.random_symbol(&mut rng);
            assert!(b == Cplx::ONE || b == -Cplx::ONE);
        }
    }

    #[test]
    fn awgn_power_matches_requested_variance() {
        let noise = awgn(100_000, 2.0, 11);
        let p = signal_power(&noise);
        assert!((p - 2.0).abs() < 0.1, "p = {p}");
        // Mean close to zero.
        let mean: Cplx = noise.iter().copied().sum::<Cplx>() / noise.len() as f64;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn awgn_is_reproducible_per_seed() {
        assert_eq!(awgn(16, 1.0, 5), awgn(16, 1.0, 5));
        assert_ne!(awgn(16, 1.0, 5), awgn(16, 1.0, 6));
    }

    #[test]
    fn normalise_power_hits_target() {
        let tone = complex_tone(256, 3.0, 256.0, 0.0);
        let scaled = normalise_power(&tone, 0.25);
        assert!((signal_power(&scaled) - 0.25).abs() < 1e-12);
        // Zero signal is returned unchanged.
        let zeros = vec![Cplx::ZERO; 8];
        assert_eq!(normalise_power(&zeros, 1.0), zeros);
        assert_eq!(signal_power(&[]), 0.0);
    }

    #[test]
    fn builder_realises_requested_snr() {
        let obs = SignalBuilder::new(65_536)
            .snr_db(3.0)
            .noise_power(1.0)
            .seed(123)
            .build()
            .unwrap();
        assert!(obs.signal_present);
        // Total power should be close to noise (1.0) + signal (10^0.3 ≈ 2.0).
        let p = signal_power(&obs.samples);
        assert!((p - 3.0).abs() < 0.2, "p = {p}");
        assert!((obs.symbol_rate_normalised - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn builder_noise_only_has_no_signal() {
        let obs = SignalBuilder::new(8192)
            .noise_only()
            .seed(4)
            .build()
            .unwrap();
        assert!(!obs.signal_present);
        assert!(obs.snr_db.is_none());
        let p = signal_power(&obs.samples);
        assert!((p - 1.0).abs() < 0.1);
    }

    #[test]
    fn builder_rejects_invalid_inputs() {
        assert!(SignalBuilder::new(16).noise_power(-1.0).build().is_err());
        assert!(SignalBuilder::new(16)
            .snr_db(f64::INFINITY)
            .build()
            .is_err());
        assert!(SignalBuilder::new(16)
            .samples_per_symbol(0)
            .build()
            .is_err());
    }
}
