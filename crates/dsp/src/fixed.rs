//! Q15 fixed-point arithmetic.
//!
//! The Montium datapath is 16 bits wide; the paper sizes the accumulation
//! memories as "8K words of 16 bits" and argues that this suffices "for
//! dynamic ranges smaller than 96 dB". This module provides the Q15
//! (1 sign bit, 15 fractional bits) scalar type used by the fixed-point
//! complex type [`crate::complex::CplxQ15`] and by the Montium simulator,
//! together with helpers to reason about quantisation and dynamic range.

use std::fmt;

/// Number of fractional bits in the Q15 format.
pub const Q15_FRACTION_BITS: u32 = 15;

/// The scaling factor `2^15` between the real value and the raw integer.
pub const Q15_SCALE: f64 = 32768.0;

/// A signed Q15 fixed-point number in `[-1, 1)`.
///
/// The raw representation is an `i16`; the represented value is
/// `raw / 32768`. All arithmetic saturates rather than wrapping, matching a
/// typical DSP datapath.
///
/// # Examples
///
/// ```
/// use cfd_dsp::fixed::Q15;
///
/// let half = Q15::from_f64(0.5);
/// let quarter = Q15::from_f64(0.25);
/// let p = half.saturating_mul(quarter);
/// assert!((p.to_f64() - 0.125).abs() < 1e-4);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Q15(i16);

impl Q15 {
    /// Zero.
    pub const ZERO: Q15 = Q15(0);
    /// The largest representable value, `32767/32768 ≈ 0.99997`.
    pub const MAX: Q15 = Q15(i16::MAX);
    /// The most negative representable value, `-1.0`.
    pub const MIN: Q15 = Q15(i16::MIN);
    /// One least-significant bit, `1/32768`.
    pub const EPSILON: Q15 = Q15(1);

    /// Creates a Q15 value from its raw 16-bit representation.
    #[inline]
    pub const fn from_raw(raw: i16) -> Self {
        Q15(raw)
    }

    /// Returns the raw 16-bit representation.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Quantises a floating-point value, saturating to `[-1, MAX]`.
    ///
    /// Values are rounded to the nearest representable Q15 value.
    #[inline]
    pub fn from_f64(value: f64) -> Self {
        let scaled = (value * Q15_SCALE).round();
        if scaled >= i16::MAX as f64 {
            Q15::MAX
        } else if scaled <= i16::MIN as f64 {
            Q15::MIN
        } else {
            Q15(scaled as i16)
        }
    }

    /// Converts to double precision.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Q15_SCALE
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Q15(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Q15(self.0.saturating_sub(rhs.0))
    }

    /// Saturating negation (`-(-1.0)` saturates to `MAX`).
    #[inline]
    pub fn saturating_neg(self) -> Self {
        Q15(self.0.checked_neg().unwrap_or(i16::MAX))
    }

    /// Saturating multiplication with rounding.
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        Q15::from_wide(self.wide_mul(rhs))
    }

    /// Full-precision 16×16→32-bit product in Q30.
    ///
    /// Combine several wide products (e.g. the four partial products of a
    /// complex multiplication) before converting back with
    /// [`Q15::from_wide`], exactly as a MAC datapath with a wide accumulator
    /// would.
    #[inline]
    pub fn wide_mul(self, rhs: Self) -> i32 {
        (self.0 as i32) * (rhs.0 as i32)
    }

    /// Converts a Q30 wide value back to Q15 with rounding and saturation.
    #[inline]
    pub fn from_wide(wide: i32) -> Self {
        // Round-to-nearest: add half an LSB (2^14) before shifting right by 15.
        let rounded = (wide + (1 << (Q15_FRACTION_BITS - 1))) >> Q15_FRACTION_BITS;
        if rounded > i16::MAX as i32 {
            Q15::MAX
        } else if rounded < i16::MIN as i32 {
            Q15::MIN
        } else {
            Q15(rounded as i16)
        }
    }

    /// Absolute value, saturating (`|-1.0|` saturates to `MAX`).
    #[inline]
    pub fn saturating_abs(self) -> Self {
        if self.0 == i16::MIN {
            Q15::MAX
        } else {
            Q15(self.0.abs())
        }
    }

    /// Arithmetic shift right by `bits` (divide by `2^bits`), used for
    /// block-floating-point style scaling inside FFT stages. A named method
    /// rather than `ops::Shr` so call sites read as an explicit datapath
    /// operation.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, bits: u32) -> Self {
        Q15(self.0 >> bits.min(15))
    }
}

impl fmt::Display for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

impl From<f64> for Q15 {
    fn from(value: f64) -> Self {
        Q15::from_f64(value)
    }
}

/// The quantisation step of the Q15 format (one LSB), `1/32768`.
#[inline]
pub fn q15_quantisation_step() -> f64 {
    1.0 / Q15_SCALE
}

/// Dynamic range of an `bits`-bit two's-complement word in dB,
/// `20·log10(2^(bits-1))`.
///
/// For the 16-bit Montium words this is ≈ 90.3 dB; the paper's statement
/// that the memories suffice "for dynamic ranges smaller than 96 dB" uses
/// the common `6.02·bits` rule of thumb which [`dynamic_range_db_rule_of_thumb`]
/// reproduces.
#[inline]
pub fn dynamic_range_db(bits: u32) -> f64 {
    20.0 * ((2.0_f64).powi(bits as i32 - 1)).log10()
}

/// The `6.02 dB per bit` rule of thumb used in the paper (96 dB for 16 bits).
#[inline]
pub fn dynamic_range_db_rule_of_thumb(bits: u32) -> f64 {
    6.02 * bits as f64
}

/// Measures the worst-case absolute quantisation error of representing
/// `values` in Q15.
pub fn max_quantisation_error(values: &[f64]) -> f64 {
    values
        .iter()
        .map(|&v| (Q15::from_f64(v).to_f64() - v.clamp(-1.0, (i16::MAX as f64) / Q15_SCALE)).abs())
        .fold(0.0, f64::max)
}

/// Signal-to-quantisation-noise ratio (dB) of representing `values` in Q15.
///
/// Returns `None` if the signal power is zero.
pub fn quantisation_snr_db(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let signal_power: f64 = values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64;
    if signal_power == 0.0 {
        return None;
    }
    let noise_power: f64 = values
        .iter()
        .map(|&v| {
            let e = Q15::from_f64(v).to_f64() - v;
            e * e
        })
        .sum::<f64>()
        / values.len() as f64;
    if noise_power == 0.0 {
        Some(f64::INFINITY)
    } else {
        Some(10.0 * (signal_power / noise_power).log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_representable_values() {
        for raw in [-32768i16, -16384, -1, 0, 1, 12345, 32767] {
            let q = Q15::from_raw(raw);
            assert_eq!(Q15::from_f64(q.to_f64()), q);
            assert_eq!(q.raw(), raw);
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q15::from_f64(2.0), Q15::MAX);
        assert_eq!(Q15::from_f64(1.0), Q15::MAX);
        assert_eq!(Q15::from_f64(-2.0), Q15::MIN);
        assert_eq!(Q15::from_f64(-1.0), Q15::MIN);
    }

    #[test]
    fn addition_saturates_at_both_ends() {
        assert_eq!(Q15::MAX.saturating_add(Q15::MAX), Q15::MAX);
        assert_eq!(Q15::MIN.saturating_add(Q15::MIN), Q15::MIN);
        let a = Q15::from_f64(0.25);
        let b = Q15::from_f64(0.5);
        assert!((a.saturating_add(b).to_f64() - 0.75).abs() < 1e-4);
    }

    #[test]
    fn subtraction_and_negation() {
        let a = Q15::from_f64(0.25);
        let b = Q15::from_f64(0.5);
        assert!((b.saturating_sub(a).to_f64() - 0.25).abs() < 1e-4);
        assert_eq!(Q15::MIN.saturating_neg(), Q15::MAX);
        assert_eq!(Q15::ZERO.saturating_neg(), Q15::ZERO);
    }

    #[test]
    fn multiplication_of_halves() {
        let half = Q15::from_f64(0.5);
        let p = half.saturating_mul(half);
        assert!((p.to_f64() - 0.25).abs() < 1e-4);
    }

    #[test]
    fn multiplication_never_overflows_except_min_times_min() {
        // (-1.0) * (-1.0) = +1.0 which is not representable: saturates to MAX.
        assert_eq!(Q15::MIN.saturating_mul(Q15::MIN), Q15::MAX);
        assert_eq!(Q15::MAX.saturating_mul(Q15::MAX).raw(), 32766);
    }

    #[test]
    fn wide_mul_then_from_wide_equals_saturating_mul() {
        let a = Q15::from_f64(0.3);
        let b = Q15::from_f64(-0.7);
        assert_eq!(Q15::from_wide(a.wide_mul(b)), a.saturating_mul(b));
    }

    #[test]
    fn abs_and_shift() {
        assert_eq!(Q15::from_f64(-0.5).saturating_abs(), Q15::from_f64(0.5));
        assert_eq!(Q15::MIN.saturating_abs(), Q15::MAX);
        let v = Q15::from_raw(16384);
        assert_eq!(v.shr(1).raw(), 8192);
        assert_eq!(v.shr(20).raw(), 0);
    }

    #[test]
    fn dynamic_range_numbers_match_paper_rule_of_thumb() {
        // 16-bit words: the paper's 96 dB comes from 6 dB/bit.
        assert!((dynamic_range_db_rule_of_thumb(16) - 96.32).abs() < 0.5);
        assert!((dynamic_range_db(16) - 90.3).abs() < 0.2);
    }

    #[test]
    fn quantisation_error_is_bounded_by_half_lsb() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 / 1000.0) - 0.5).collect();
        let err = max_quantisation_error(&values);
        assert!(err <= 0.5 / Q15_SCALE + 1e-12, "err = {err}");
    }

    #[test]
    fn quantisation_snr_is_high_for_full_scale_signals() {
        let values: Vec<f64> = (0..4096)
            .map(|i| 0.9 * (2.0 * std::f64::consts::PI * i as f64 / 64.0).sin())
            .collect();
        let snr = quantisation_snr_db(&values).unwrap();
        // Theoretical SQNR for a full-scale sine in Q15 is ~86 dB + headroom loss.
        assert!(snr > 75.0, "snr = {snr}");
    }

    #[test]
    fn quantisation_snr_none_for_empty_or_zero() {
        assert!(quantisation_snr_db(&[]).is_none());
        assert!(quantisation_snr_db(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn display_and_from() {
        let v: Q15 = 0.5.into();
        assert_eq!(v, Q15::from_f64(0.5));
        assert!(v.to_string().starts_with("0.5"));
    }
}
