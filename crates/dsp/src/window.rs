//! Analysis windows applied before the block DFT of eq. 2.
//!
//! The paper uses plain rectangular blocks; other windows are provided
//! because spectrum-sensing front-ends commonly trade leakage against
//! resolution, and because they exercise the same datapath.

use std::f64::consts::PI;
use std::fmt;

/// Analysis window shape.
///
/// # Examples
///
/// ```
/// use cfd_dsp::window::Window;
///
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12);           // Hann starts at zero
/// assert!((w[4] - 1.0).abs() < 0.21); // and peaks near the middle
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Window {
    /// All-ones window (the paper's implicit choice).
    #[default]
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl Window {
    /// All window variants, useful for sweeps and tests.
    pub const ALL: [Window; 4] = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
    ];

    /// Returns the window coefficients for a block of `len` samples.
    ///
    /// A zero-length request returns an empty vector; a length of one
    /// returns `[1.0]` for every shape.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        if len == 1 {
            return vec![1.0];
        }
        let denom = (len - 1) as f64;
        (0..len)
            .map(|i| {
                let x = i as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
                    Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
                    Window::Blackman => {
                        0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Coherent gain: the mean of the coefficients (1.0 for rectangular).
    pub fn coherent_gain(self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.coefficients(len).iter().sum::<f64>() / len as f64
    }

    /// Equivalent noise bandwidth in bins
    /// (`len · Σw² / (Σw)²`, 1.0 for rectangular).
    pub fn equivalent_noise_bandwidth(self, len: usize) -> f64 {
        let coeffs = self.coefficients(len);
        let sum: f64 = coeffs.iter().sum();
        if sum == 0.0 {
            return 0.0;
        }
        let sum_sq: f64 = coeffs.iter().map(|w| w * w).sum();
        len as f64 * sum_sq / (sum * sum)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::Rectangular.coefficients(16);
        assert!(w.iter().all(|&c| (c - 1.0).abs() < 1e-15));
        assert!((Window::Rectangular.coherent_gain(16) - 1.0).abs() < 1e-15);
        assert!((Window::Rectangular.equivalent_noise_bandwidth(16) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn edge_cases_zero_and_one() {
        for w in Window::ALL {
            assert!(w.coefficients(0).is_empty());
            assert_eq!(w.coefficients(1), vec![1.0]);
        }
        assert_eq!(Window::Hann.coherent_gain(0), 0.0);
        assert_eq!(Window::Hann.equivalent_noise_bandwidth(0), 0.0);
    }

    #[test]
    fn windows_are_symmetric() {
        for w in Window::ALL {
            let c = w.coefficients(33);
            for i in 0..c.len() {
                assert!(
                    (c[i] - c[c.len() - 1 - i]).abs() < 1e-12,
                    "{w} not symmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn tapered_windows_have_lower_coherent_gain() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let g = w.coherent_gain(256);
            assert!(g > 0.0 && g < 1.0, "{w}: {g}");
        }
    }

    #[test]
    fn hann_enbw_is_about_1_5() {
        let enbw = Window::Hann.equivalent_noise_bandwidth(4096);
        assert!((enbw - 1.5).abs() < 0.01, "enbw = {enbw}");
    }

    #[test]
    fn coefficients_are_in_unit_range() {
        for w in Window::ALL {
            for &c in &w.coefficients(101) {
                assert!((-1e-9..=1.0 + 1e-9).contains(&c), "{w}: {c}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Window::Rectangular.to_string(), "rectangular");
        assert_eq!(Window::Blackman.to_string(), "blackman");
    }
}
