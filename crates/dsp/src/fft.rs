//! Discrete Fourier transforms.
//!
//! The paper applies a K-point DFT (eq. 2) to overlapping blocks of the
//! sampled signal; with `K = 2^k` this becomes an FFT with
//! `½·K·log2(K)` complex multiplications, against which the cost of the
//! DSCF (`¼·K²` complex multiplications) is compared in Section 2.
//!
//! This module provides:
//!
//! * [`FftPlan`] — a reusable plan holding the precomputed twiddle factors
//!   and bit-reversal permutation for one transform length,
//! * [`fft_in_place`] / [`ifft_in_place`] — iterative radix-2
//!   decimation-in-time FFT for power-of-two sizes (thin wrappers over a
//!   per-thread cache of plans),
//! * [`dft_naive`] — an O(K²) direct DFT used as the golden model in tests,
//! * [`block_spectrum`] — the windowed, time-shifted spectrum
//!   `X_{n,v}` of eq. 2 (and [`block_spectrum_with_plan`], its
//!   allocation-conscious core),
//! * complexity helpers ([`fft_complex_multiplications`],
//!   [`dscf_complex_multiplications`]) reproducing the Section 2 cost
//!   comparison ("16× as many multiplications for a 256-point spectrum").

use crate::complex::Cplx;
use crate::error::DspError;
use crate::window::Window;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;
use std::sync::OnceLock;

/// Cached handle to the `dsp.fft.forward_ns` stage histogram. The plan
/// itself stays handle-free (it is `Clone + serde`-derived); a process-wide
/// `OnceLock` keeps the per-call cost to one pointer load once telemetry
/// has been enabled, and [`cfd_telemetry::span`]-style gating keeps it to
/// one atomic load while it is not.
fn forward_ns() -> &'static cfd_telemetry::Histogram {
    static FORWARD_NS: OnceLock<cfd_telemetry::Histogram> = OnceLock::new();
    FORWARD_NS.get_or_init(|| cfd_telemetry::histogram("dsp.fft.forward_ns"))
}

/// Returns `true` if `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Bit-reverses the `bits`-bit value `x`.
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    let mut y = 0usize;
    for i in 0..bits {
        y |= ((x >> i) & 1) << (bits - 1 - i);
    }
    y
}

/// Permutes `data` into bit-reversed order in place.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute(data: &mut [Cplx]) {
    let n = data.len();
    assert!(is_power_of_two(n), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// A reusable FFT plan for one power-of-two transform length.
///
/// The planless [`fft_in_place`] of earlier revisions recomputed
/// `exp(-j·2π/len)` at every stage of every call and derived the stage
/// twiddles by repeated multiplication. A plan hoists all of that set-up
/// out of the hot loop — it is built once per length and reused across
/// every block of a sweep:
///
/// * **stage twiddles** — `exp(±j·2π·offset/size)` for every butterfly of
///   every stage, stage-major and contiguous, evaluated directly (no
///   accumulated rounding from the old repeated-multiplication recurrence);
///   forward and inverse tables are both stored so neither direction pays
///   a per-butterfly conjugation;
/// * **bit-reversal permutation** — the reordering target of every index,
///   replacing the per-call bit-twiddling loop;
/// * **phase roots** — the `len` distinct values of `exp(-j·2π·r/len)`,
///   used by [`block_spectrum_with_plan`] to apply the absolute-time phase
///   rotation of eq. 2 by table lookup with exact index reduction (the
///   old path evaluated `cos`/`sin` of an unreduced, arbitrarily large
///   phase per bin per block).
///
/// The planless [`fft_in_place`] / [`ifft_in_place`] remain available as
/// thin wrappers over a per-thread cache of plans ([`cached_plan`]), so
/// existing call sites get the precomputation for free.
///
/// # Examples
///
/// ```
/// use cfd_dsp::complex::Cplx;
/// use cfd_dsp::fft::FftPlan;
///
/// # fn main() -> Result<(), cfd_dsp::error::DspError> {
/// let plan = FftPlan::new(8)?;
/// let mut data = vec![Cplx::ONE; 8];
/// plan.forward_in_place(&mut data)?;
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// plan.inverse_in_place(&mut data)?;
/// assert!((data[0] - Cplx::ONE).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FftPlan {
    len: usize,
    /// Bit-reversal target of every index (`permutation[i] = reverse(i)`).
    permutation: Vec<u32>,
    /// Forward twiddles, stage-major: the stage of sub-FFT size `s`
    /// contributes `s/2` entries `exp(-j·2π·offset/s)`, `offset < s/2`.
    forward: Vec<Cplx>,
    /// The same table for the inverse transform (`exp(+j·2π·offset/s)`).
    inverse: Vec<Cplx>,
    /// `phase_roots[r] = exp(-j·2π·r/len)` for `r ∈ 0..len`.
    phase_roots: Vec<Cplx>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotPowerOfTwo`] if `len` is not a power of two.
    pub fn new(len: usize) -> Result<Self, DspError> {
        if !is_power_of_two(len) {
            return Err(DspError::NotPowerOfTwo { length: len });
        }
        let bits = len.trailing_zeros();
        let permutation = (0..len).map(|i| bit_reverse(i, bits) as u32).collect();
        // One entry per butterfly position per stage: Σ s/2 = len - 1.
        let mut forward = Vec::with_capacity(len.saturating_sub(1));
        let mut inverse = Vec::with_capacity(len.saturating_sub(1));
        let mut size = 2;
        while size <= len {
            for offset in 0..size / 2 {
                let angle = 2.0 * PI * offset as f64 / size as f64;
                forward.push(Cplx::cis(-angle));
                inverse.push(Cplx::cis(angle));
            }
            size <<= 1;
        }
        let phase_roots = (0..len)
            .map(|r| Cplx::cis(-2.0 * PI * r as f64 / len as f64))
            .collect();
        Ok(FftPlan {
            len,
            permutation,
            forward,
            inverse,
            phase_roots,
        })
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for the degenerate length-0 plan (never constructible via
    /// [`FftPlan::new`], provided for API completeness with `len`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check_len(&self, data: &[Cplx]) -> Result<(), DspError> {
        if data.len() != self.len {
            return Err(DspError::InvalidParameter {
                name: "data",
                message: format!(
                    "plan is for length {}, got a buffer of length {}",
                    self.len,
                    data.len()
                ),
            });
        }
        Ok(())
    }

    fn transform(&self, data: &mut [Cplx], twiddles: &[Cplx]) {
        let n = self.len;
        for (i, &target) in self.permutation.iter().enumerate() {
            let j = target as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        let mut stage_offset = 0;
        let mut size = 2;
        while size <= n {
            let half = size / 2;
            let stage = &twiddles[stage_offset..stage_offset + half];
            for start in (0..n).step_by(size) {
                for (offset, &w) in stage.iter().enumerate() {
                    let even = data[start + offset];
                    let odd = data[start + offset + half] * w;
                    data[start + offset] = even + odd;
                    data[start + offset + half] = even - odd;
                }
            }
            stage_offset += half;
            size <<= 1;
        }
    }

    /// In-place forward FFT
    /// (`X[v] = Σ_k x[k]·exp(-j·2π·k·v/N)`).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `data.len()` differs from
    /// the plan length.
    pub fn forward_in_place(&self, data: &mut [Cplx]) -> Result<(), DspError> {
        self.check_len(data)?;
        let _span = forward_ns().start_timer();
        self.transform(data, &self.forward);
        Ok(())
    }

    /// In-place inverse FFT, including the `1/N` normalisation.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `data.len()` differs from
    /// the plan length.
    pub fn inverse_in_place(&self, data: &mut [Cplx]) -> Result<(), DspError> {
        self.check_len(data)?;
        self.transform(data, &self.inverse);
        let n = self.len as f64;
        for value in data.iter_mut() {
            *value = *value / n;
        }
        Ok(())
    }

    /// The `r`-th rotation-table root `exp(-j·2π·r/len)` (with `r`
    /// reduced modulo the plan length) — the same table
    /// [`FftPlan::rotate_block_phase`] reads, so phase factors derived
    /// from it compose bit-identically with the block rotation.
    pub fn phase_root(&self, r: usize) -> Cplx {
        self.phase_roots[r % self.len]
    }

    /// Applies the eq.-2 absolute-time phase rotation
    /// `X[v] *= exp(-j·2π·start·v/len)` by table lookup.
    ///
    /// The exponent index `start·v` is reduced modulo `len` incrementally
    /// (no multiplication, no `%` in the loop, no large-argument
    /// `cos`/`sin`), so the rotation is exact for any block start.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the plan length.
    pub fn rotate_block_phase(&self, start: usize, data: &mut [Cplx]) {
        assert!(data.len() <= self.len, "buffer longer than the plan");
        let step = start % self.len.max(1);
        if step == 0 {
            return;
        }
        let mut r = 0usize;
        for value in data.iter_mut() {
            *value *= self.phase_roots[r];
            r += step;
            if r >= self.len {
                r -= self.len;
            }
        }
    }
}

thread_local! {
    /// Per-thread cache of plans, keyed by transform length. Plans are
    /// immutable once built, so sharing them via `Rc` is free; keeping the
    /// cache thread-local avoids any locking on the hot path.
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

/// Returns this thread's cached [`FftPlan`] for `len`, building (and
/// caching) it on first use.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `len` is not a power of two.
pub fn cached_plan(len: usize) -> Result<Rc<FftPlan>, DspError> {
    PLAN_CACHE.with(|cache| {
        if let Some(plan) = cache.borrow().get(&len) {
            return Ok(Rc::clone(plan));
        }
        let plan = Rc::new(FftPlan::new(len)?);
        cache.borrow_mut().insert(len, Rc::clone(&plan));
        Ok(plan)
    })
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// Computes `X[v] = Σ_k x[k]·exp(-j·2π·k·v/N)` for `N = data.len()`.
/// This is a thin wrapper over this thread's cached [`FftPlan`]; hot loops
/// that already hold a plan should call [`FftPlan::forward_in_place`]
/// directly.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
///
/// # Examples
///
/// ```
/// use cfd_dsp::complex::Cplx;
/// use cfd_dsp::fft::fft_in_place;
///
/// # fn main() -> Result<(), cfd_dsp::error::DspError> {
/// let mut data = vec![Cplx::ONE; 8];
/// fft_in_place(&mut data)?;
/// assert!((data[0].re - 8.0).abs() < 1e-12); // DC bin holds the sum
/// assert!(data[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Cplx]) -> Result<(), DspError> {
    cached_plan(data.len())?.forward_in_place(data)
}

/// In-place inverse FFT, including the `1/N` normalisation (a thin wrapper
/// over this thread's cached [`FftPlan`]).
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
pub fn ifft_in_place(data: &mut [Cplx]) -> Result<(), DspError> {
    cached_plan(data.len())?.inverse_in_place(data)
}

/// Convenience wrapper returning a new vector instead of transforming in place.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
pub fn fft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    let mut data = input.to_vec();
    fft_in_place(&mut data)?;
    Ok(data)
}

/// Convenience wrapper around [`ifft_in_place`].
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
pub fn ifft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    let mut data = input.to_vec();
    ifft_in_place(&mut data)?;
    Ok(data)
}

/// Direct O(N²) DFT used as a golden model for testing the FFT.
///
/// Works for any length, not just powers of two.
pub fn dft_naive(input: &[Cplx]) -> Vec<Cplx> {
    let n = input.len();
    (0..n)
        .map(|v| {
            (0..n)
                .map(|k| input[k] * Cplx::cis(-2.0 * PI * (k * v) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// Computes the block spectrum `X_{n,v}` of eq. 2 for the block starting at
/// sample `n`:
///
/// `X_{n,v} = Σ_{k=0..K-1} x[n+k]·w[k]·exp(-j·2π·(n+k)·v/K)`
///
/// The paper's eq. 2 uses the absolute sample index `n+k` in the exponent;
/// the phase factor relative to a block-local DFT is `exp(-j·2π·n·v/K)`,
/// which this function applies after an FFT of the windowed block. The
/// window defaults to rectangular in the paper; any [`Window`] may be used.
///
/// # Errors
///
/// * [`DspError::NotPowerOfTwo`] if `block_len` is not a power of two,
/// * [`DspError::InsufficientSamples`] if the signal does not contain
///   `start + block_len` samples.
pub fn block_spectrum(
    signal: &[Cplx],
    start: usize,
    block_len: usize,
    window: Window,
) -> Result<Vec<Cplx>, DspError> {
    let plan = cached_plan(block_len)?;
    let coeffs = window.coefficients(block_len);
    block_spectrum_with_plan(signal, start, &plan, &coeffs)
}

/// The allocation-conscious core of [`block_spectrum`]: the caller supplies
/// the [`FftPlan`] and the window coefficients, so repeated evaluation
/// (every block of every trial of a sweep) pays for neither twiddle nor
/// window recomputation. [`block_spectrum`] and the DSCF engine both route
/// through this function, which keeps their spectra bit-identical.
///
/// # Errors
///
/// * [`DspError::InsufficientSamples`] if the signal does not contain
///   `start + plan.len()` samples,
/// * [`DspError::InvalidParameter`] if the window coefficient slice does
///   not match the plan length.
pub fn block_spectrum_with_plan(
    signal: &[Cplx],
    start: usize,
    plan: &FftPlan,
    window_coeffs: &[f64],
) -> Result<Vec<Cplx>, DspError> {
    let mut block = Vec::with_capacity(plan.len());
    block_spectrum_into(signal, start, plan, window_coeffs, &mut block)?;
    Ok(block)
}

/// [`block_spectrum_with_plan`] writing into a caller-owned buffer, so hot
/// loops (a sweep worker re-evaluating the same block layout every trial)
/// reuse the spectrum allocation instead of reallocating per block.
///
/// # Errors
///
/// Same contract as [`block_spectrum_with_plan`].
pub fn block_spectrum_into(
    signal: &[Cplx],
    start: usize,
    plan: &FftPlan,
    window_coeffs: &[f64],
    out: &mut Vec<Cplx>,
) -> Result<(), DspError> {
    let block_len = plan.len();
    if window_coeffs.len() != block_len {
        return Err(DspError::InvalidParameter {
            name: "window_coeffs",
            message: format!(
                "window has {} coefficients, plan length is {block_len}",
                window_coeffs.len()
            ),
        });
    }
    if start + block_len > signal.len() {
        return Err(DspError::InsufficientSamples {
            needed: start + block_len,
            available: signal.len(),
        });
    }
    out.clear();
    out.extend(
        signal[start..start + block_len]
            .iter()
            .zip(window_coeffs.iter())
            .map(|(&x, &w)| x * w),
    );
    plan.forward_in_place(out)?;
    // Phase rotation from the absolute-time exponent of eq. 2.
    plan.rotate_block_phase(start, out);
    Ok(())
}

/// Number of complex multiplications of a radix-2 FFT of length `n`:
/// `½·n·log2(n)` (the figure used in Section 2 of the paper).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn fft_complex_multiplications(n: usize) -> usize {
    assert!(is_power_of_two(n), "length must be a power of two");
    n / 2 * n.trailing_zeros() as usize
}

/// Number of complex multiplications to evaluate the DSCF of an `n`-point
/// spectrum: `¼·n²` (Section 2).
pub fn dscf_complex_multiplications(n: usize) -> usize {
    n * n / 4
}

/// The ratio between DSCF and FFT multiplication counts; the paper quotes
/// "16 times as many" for a 256-point spectrum.
pub fn dscf_to_fft_cost_ratio(n: usize) -> f64 {
    dscf_complex_multiplications(n) as f64 / fft_complex_multiplications(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Window;

    fn assert_spectra_close(a: &[Cplx], b: &[Cplx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "bin {i}: {x} vs {y} (diff {})",
                (x - y).abs()
            );
        }
    }

    #[test]
    fn bit_reverse_small_values() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0, 4), 0);
        assert_eq!(bit_reverse(0b1111, 4), 0b1111);
    }

    #[test]
    fn bit_reverse_permute_is_involution() {
        let original: Vec<Cplx> = (0..16).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
        let mut data = original.clone();
        bit_reverse_permute(&mut data);
        bit_reverse_permute(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Cplx::ZERO; 16];
        data[0] = Cplx::ONE;
        fft_in_place(&mut data).unwrap();
        for bin in data {
            assert!((bin - Cplx::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_complex_tone_has_single_peak() {
        let n = 64;
        let bin = 5;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::cis(2.0 * PI * (bin * k) as f64 / n as f64))
            .collect();
        let spectrum = fft(&data).unwrap();
        for (v, value) in spectrum.iter().enumerate() {
            if v == bin {
                assert!((value.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(value.abs() < 1e-9, "bin {v} = {value}");
            }
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 32;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::new((k as f64 * 0.37).sin(), (k as f64 * 0.91).cos()))
            .collect();
        let fast = fft(&data).unwrap();
        let slow = dft_naive(&data);
        assert_spectra_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::new((k as f64).cos(), (k as f64 * 1.7).sin()))
            .collect();
        let spectrum = fft(&data).unwrap();
        let back = ifft(&spectrum).unwrap();
        assert_spectra_close(&back, &data, 1e-10);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::new((k as f64 * 0.11).sin(), (k as f64 * 0.07).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|x| x.norm_sqr()).sum();
        let spectrum = fft(&data).unwrap();
        let freq_energy: f64 = spectrum.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        let mut data = vec![Cplx::ZERO; 12];
        assert!(matches!(
            fft_in_place(&mut data),
            Err(DspError::NotPowerOfTwo { length: 12 })
        ));
        assert!(ifft(&[Cplx::ZERO; 3]).is_err());
    }

    #[test]
    fn length_one_fft_is_identity() {
        let mut data = vec![Cplx::new(2.0, 3.0)];
        fft_in_place(&mut data).unwrap();
        assert_eq!(data[0], Cplx::new(2.0, 3.0));
    }

    #[test]
    fn block_spectrum_applies_time_shift_phase() {
        // A tone at bin 3: the block starting at n has the same magnitude
        // spectrum, and the phase of eq. 2 relative to block 0 is
        // exp(-j 2π n v / K) * exp(+j 2π n·bin/K) from the signal itself;
        // check against a direct evaluation of eq. 2.
        let k = 32usize;
        let bin = 3usize;
        let total = 3 * k;
        let signal: Vec<Cplx> = (0..total)
            .map(|t| Cplx::cis(2.0 * PI * (bin * t) as f64 / k as f64))
            .collect();
        let start = 17;
        let got = block_spectrum(&signal, start, k, Window::Rectangular).unwrap();
        // Direct eq. 2 evaluation.
        let direct: Vec<Cplx> = (0..k)
            .map(|v| {
                (0..k)
                    .map(|kk| {
                        signal[start + kk]
                            * Cplx::cis(-2.0 * PI * ((start + kk) * v) as f64 / k as f64)
                    })
                    .sum()
            })
            .collect();
        assert_spectra_close(&got, &direct, 1e-8);
    }

    #[test]
    fn block_spectrum_rejects_out_of_range() {
        let signal = vec![Cplx::ZERO; 40];
        assert!(matches!(
            block_spectrum(&signal, 20, 32, Window::Rectangular),
            Err(DspError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn plan_matches_naive_dft_and_rejects_mismatched_buffers() {
        let plan = FftPlan::new(16).unwrap();
        assert_eq!(plan.len(), 16);
        assert!(!plan.is_empty());
        let data: Vec<Cplx> = (0..16)
            .map(|k| Cplx::new((k as f64).sin(), 0.2 * k as f64))
            .collect();
        let mut fast = data.clone();
        plan.forward_in_place(&mut fast).unwrap();
        assert_spectra_close(&fast, &dft_naive(&data), 1e-9);
        plan.inverse_in_place(&mut fast).unwrap();
        assert_spectra_close(&fast, &data, 1e-10);
        let mut wrong = vec![Cplx::ZERO; 8];
        assert!(plan.forward_in_place(&mut wrong).is_err());
        assert!(plan.inverse_in_place(&mut wrong).is_err());
        assert!(matches!(
            FftPlan::new(12),
            Err(DspError::NotPowerOfTwo { length: 12 })
        ));
    }

    #[test]
    fn cached_plan_is_shared_within_a_thread() {
        let a = cached_plan(64).unwrap();
        let b = cached_plan(64).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        assert!(cached_plan(10).is_err());
    }

    #[test]
    fn rotate_block_phase_reduces_the_exponent_exactly() {
        let k = 32usize;
        let plan = FftPlan::new(k).unwrap();
        let data: Vec<Cplx> = (0..k).map(|v| Cplx::new(1.0 + v as f64, -0.5)).collect();
        // A start beyond the block length must behave as start mod K.
        let start = 17 + 2 * k;
        let mut rotated = data.clone();
        plan.rotate_block_phase(start, &mut rotated);
        for (v, (&got, &x)) in rotated.iter().zip(data.iter()).enumerate() {
            let expected = x * Cplx::cis(-2.0 * PI * ((start * v) % k) as f64 / k as f64);
            assert!((got - expected).abs() < 1e-12, "bin {v}");
        }
        // start = 0 is the identity.
        let mut same = data.clone();
        plan.rotate_block_phase(0, &mut same);
        assert_eq!(same, data);
    }

    #[test]
    fn block_spectrum_with_plan_rejects_mismatched_window() {
        let plan = FftPlan::new(16).unwrap();
        let signal = vec![Cplx::ONE; 32];
        let coeffs = Window::Rectangular.coefficients(8);
        assert!(matches!(
            block_spectrum_with_plan(&signal, 0, &plan, &coeffs),
            Err(DspError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn section2_cost_comparison_for_256_points() {
        // FFT: ½·256·8 = 1024 multiplications; DSCF: ¼·256² = 16384.
        assert_eq!(fft_complex_multiplications(256), 1024);
        assert_eq!(dscf_complex_multiplications(256), 16384);
        assert!((dscf_to_fft_cost_ratio(256) - 16.0).abs() < 1e-12);
    }
}
