//! Discrete Fourier transforms.
//!
//! The paper applies a K-point DFT (eq. 2) to overlapping blocks of the
//! sampled signal; with `K = 2^k` this becomes an FFT with
//! `½·K·log2(K)` complex multiplications, against which the cost of the
//! DSCF (`¼·K²` complex multiplications) is compared in Section 2.
//!
//! This module provides:
//!
//! * [`fft_in_place`] / [`ifft_in_place`] — iterative radix-2
//!   decimation-in-time FFT for power-of-two sizes,
//! * [`dft_naive`] — an O(K²) direct DFT used as the golden model in tests,
//! * [`block_spectrum`] — the windowed, time-shifted spectrum
//!   `X_{n,v}` of eq. 2,
//! * complexity helpers ([`fft_complex_multiplications`],
//!   [`dscf_complex_multiplications`]) reproducing the Section 2 cost
//!   comparison ("16× as many multiplications for a 256-point spectrum").

use crate::complex::Cplx;
use crate::error::DspError;
use crate::window::Window;
use std::f64::consts::PI;

/// Returns `true` if `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Bit-reverses the `bits`-bit value `x`.
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    let mut y = 0usize;
    for i in 0..bits {
        y |= ((x >> i) & 1) << (bits - 1 - i);
    }
    y
}

/// Permutes `data` into bit-reversed order in place.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute(data: &mut [Cplx]) {
    let n = data.len();
    assert!(is_power_of_two(n), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// Computes `X[v] = Σ_k x[k]·exp(-j·2π·k·v/N)` for `N = data.len()`.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
///
/// # Examples
///
/// ```
/// use cfd_dsp::complex::Cplx;
/// use cfd_dsp::fft::fft_in_place;
///
/// # fn main() -> Result<(), cfd_dsp::error::DspError> {
/// let mut data = vec![Cplx::ONE; 8];
/// fft_in_place(&mut data)?;
/// assert!((data[0].re - 8.0).abs() < 1e-12); // DC bin holds the sum
/// assert!(data[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Cplx]) -> Result<(), DspError> {
    transform_in_place(data, Direction::Forward)
}

/// In-place inverse FFT, including the `1/N` normalisation.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
pub fn ifft_in_place(data: &mut [Cplx]) -> Result<(), DspError> {
    transform_in_place(data, Direction::Inverse)?;
    let n = data.len() as f64;
    for value in data.iter_mut() {
        *value = *value / n;
    }
    Ok(())
}

/// Convenience wrapper returning a new vector instead of transforming in place.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
pub fn fft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    let mut data = input.to_vec();
    fft_in_place(&mut data)?;
    Ok(data)
}

/// Convenience wrapper around [`ifft_in_place`].
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if the length is not a power of two.
pub fn ifft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    let mut data = input.to_vec();
    ifft_in_place(&mut data)?;
    Ok(data)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

fn transform_in_place(data: &mut [Cplx], direction: Direction) -> Result<(), DspError> {
    let n = data.len();
    if !is_power_of_two(n) {
        return Err(DspError::NotPowerOfTwo { length: n });
    }
    if n == 1 {
        return Ok(());
    }
    bit_reverse_permute(data);

    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    let mut len = 2;
    while len <= n {
        let angle_step = sign * 2.0 * PI / len as f64;
        let w_len = Cplx::cis(angle_step);
        for start in (0..n).step_by(len) {
            let mut w = Cplx::ONE;
            for offset in 0..len / 2 {
                let even = data[start + offset];
                let odd = data[start + offset + len / 2] * w;
                data[start + offset] = even + odd;
                data[start + offset + len / 2] = even - odd;
                w *= w_len;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Direct O(N²) DFT used as a golden model for testing the FFT.
///
/// Works for any length, not just powers of two.
pub fn dft_naive(input: &[Cplx]) -> Vec<Cplx> {
    let n = input.len();
    (0..n)
        .map(|v| {
            (0..n)
                .map(|k| input[k] * Cplx::cis(-2.0 * PI * (k * v) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// Computes the block spectrum `X_{n,v}` of eq. 2 for the block starting at
/// sample `n`:
///
/// `X_{n,v} = Σ_{k=0..K-1} x[n+k]·w[k]·exp(-j·2π·(n+k)·v/K)`
///
/// The paper's eq. 2 uses the absolute sample index `n+k` in the exponent;
/// the phase factor relative to a block-local DFT is `exp(-j·2π·n·v/K)`,
/// which this function applies after an FFT of the windowed block. The
/// window defaults to rectangular in the paper; any [`Window`] may be used.
///
/// # Errors
///
/// * [`DspError::NotPowerOfTwo`] if `block_len` is not a power of two,
/// * [`DspError::InsufficientSamples`] if the signal does not contain
///   `start + block_len` samples.
pub fn block_spectrum(
    signal: &[Cplx],
    start: usize,
    block_len: usize,
    window: Window,
) -> Result<Vec<Cplx>, DspError> {
    if !is_power_of_two(block_len) {
        return Err(DspError::NotPowerOfTwo { length: block_len });
    }
    if start + block_len > signal.len() {
        return Err(DspError::InsufficientSamples {
            needed: start + block_len,
            available: signal.len(),
        });
    }
    let coeffs = window.coefficients(block_len);
    let mut block: Vec<Cplx> = signal[start..start + block_len]
        .iter()
        .zip(coeffs.iter())
        .map(|(&x, &w)| x * w)
        .collect();
    fft_in_place(&mut block)?;
    // Phase rotation from the absolute-time exponent of eq. 2.
    for (v, value) in block.iter_mut().enumerate() {
        let phase = -2.0 * PI * (start as f64) * (v as f64) / block_len as f64;
        *value *= Cplx::cis(phase);
    }
    Ok(block)
}

/// Number of complex multiplications of a radix-2 FFT of length `n`:
/// `½·n·log2(n)` (the figure used in Section 2 of the paper).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn fft_complex_multiplications(n: usize) -> usize {
    assert!(is_power_of_two(n), "length must be a power of two");
    n / 2 * n.trailing_zeros() as usize
}

/// Number of complex multiplications to evaluate the DSCF of an `n`-point
/// spectrum: `¼·n²` (Section 2).
pub fn dscf_complex_multiplications(n: usize) -> usize {
    n * n / 4
}

/// The ratio between DSCF and FFT multiplication counts; the paper quotes
/// "16 times as many" for a 256-point spectrum.
pub fn dscf_to_fft_cost_ratio(n: usize) -> f64 {
    dscf_complex_multiplications(n) as f64 / fft_complex_multiplications(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Window;

    fn assert_spectra_close(a: &[Cplx], b: &[Cplx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "bin {i}: {x} vs {y} (diff {})",
                (x - y).abs()
            );
        }
    }

    #[test]
    fn bit_reverse_small_values() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0, 4), 0);
        assert_eq!(bit_reverse(0b1111, 4), 0b1111);
    }

    #[test]
    fn bit_reverse_permute_is_involution() {
        let original: Vec<Cplx> = (0..16).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
        let mut data = original.clone();
        bit_reverse_permute(&mut data);
        bit_reverse_permute(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Cplx::ZERO; 16];
        data[0] = Cplx::ONE;
        fft_in_place(&mut data).unwrap();
        for bin in data {
            assert!((bin - Cplx::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_complex_tone_has_single_peak() {
        let n = 64;
        let bin = 5;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::cis(2.0 * PI * (bin * k) as f64 / n as f64))
            .collect();
        let spectrum = fft(&data).unwrap();
        for (v, value) in spectrum.iter().enumerate() {
            if v == bin {
                assert!((value.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(value.abs() < 1e-9, "bin {v} = {value}");
            }
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 32;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::new((k as f64 * 0.37).sin(), (k as f64 * 0.91).cos()))
            .collect();
        let fast = fft(&data).unwrap();
        let slow = dft_naive(&data);
        assert_spectra_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::new((k as f64).cos(), (k as f64 * 1.7).sin()))
            .collect();
        let spectrum = fft(&data).unwrap();
        let back = ifft(&spectrum).unwrap();
        assert_spectra_close(&back, &data, 1e-10);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let data: Vec<Cplx> = (0..n)
            .map(|k| Cplx::new((k as f64 * 0.11).sin(), (k as f64 * 0.07).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|x| x.norm_sqr()).sum();
        let spectrum = fft(&data).unwrap();
        let freq_energy: f64 = spectrum.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        let mut data = vec![Cplx::ZERO; 12];
        assert!(matches!(
            fft_in_place(&mut data),
            Err(DspError::NotPowerOfTwo { length: 12 })
        ));
        assert!(ifft(&[Cplx::ZERO; 3]).is_err());
    }

    #[test]
    fn length_one_fft_is_identity() {
        let mut data = vec![Cplx::new(2.0, 3.0)];
        fft_in_place(&mut data).unwrap();
        assert_eq!(data[0], Cplx::new(2.0, 3.0));
    }

    #[test]
    fn block_spectrum_applies_time_shift_phase() {
        // A tone at bin 3: the block starting at n has the same magnitude
        // spectrum, and the phase of eq. 2 relative to block 0 is
        // exp(-j 2π n v / K) * exp(+j 2π n·bin/K) from the signal itself;
        // check against a direct evaluation of eq. 2.
        let k = 32usize;
        let bin = 3usize;
        let total = 3 * k;
        let signal: Vec<Cplx> = (0..total)
            .map(|t| Cplx::cis(2.0 * PI * (bin * t) as f64 / k as f64))
            .collect();
        let start = 17;
        let got = block_spectrum(&signal, start, k, Window::Rectangular).unwrap();
        // Direct eq. 2 evaluation.
        let direct: Vec<Cplx> = (0..k)
            .map(|v| {
                (0..k)
                    .map(|kk| {
                        signal[start + kk]
                            * Cplx::cis(-2.0 * PI * ((start + kk) * v) as f64 / k as f64)
                    })
                    .sum()
            })
            .collect();
        assert_spectra_close(&got, &direct, 1e-8);
    }

    #[test]
    fn block_spectrum_rejects_out_of_range() {
        let signal = vec![Cplx::ZERO; 40];
        assert!(matches!(
            block_spectrum(&signal, 20, 32, Window::Rectangular),
            Err(DspError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn section2_cost_comparison_for_256_points() {
        // FFT: ½·256·8 = 1024 multiplications; DSCF: ¼·256² = 16384.
        assert_eq!(fft_complex_multiplications(256), 1024);
        assert_eq!(dscf_complex_multiplications(256), 16384);
        assert!((dscf_to_fft_cost_ratio(256) - 16.0).abs() < 1e-12);
    }
}
