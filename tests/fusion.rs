//! The acceptance suite for cooperative multi-sensor fusion
//! (`cfd_core::fusion`):
//!
//! * **hard rules are counting** — `Or`/`And` are property-pinned as the
//!   `KOfN(1)`/`KOfN(N)` aliases, and for every `k` the fused verdict
//!   equals counting the per-sensor reference decisions of identically
//!   configured solo detectors over the same observation;
//! * **fused sweeps are deterministic** — a `FusionCenter` with
//!   per-sensor impairment overlays produces a `RocTable` that is
//!   bit-identical for every worker count (the content-fingerprint
//!   seeding makes realisations independent of trial scheduling);
//! * **soft combining is deterministic** — impaired soft-combining fleets
//!   reproduce their decisions bit-for-bit across replicas;
//! * **a fleet is a backend** — the same `FusionCenter` value drops
//!   unchanged into a `SweepBuilder` sweep *and* a `SensingScheduler`
//!   channel, next to (and decision-identical to) serial driving.

use cfd_core::backend::{Decision, Observation, SensingBackend};
use cfd_core::fusion::{FusionCenter, FusionRule, MemberChannel};
use cfd_core::service::{
    Backpressure, ChannelSubscription, DecisionLog, SensingScheduler, ServiceConfig,
};
use cfd_core::stream::{StreamingConfig, StreamingSensor};
use cfd_dsp::detector::CyclostationaryDetector;
use cfd_dsp::scf::ScfParams;
use cfd_scenario::channel::{ChannelPipeline, ChannelStage};
use cfd_scenario::prelude::*;
use cfd_scenario::service_traffic::{ServiceTraffic, TrafficEvent};
use proptest::prelude::*;

fn params() -> ScfParams {
    ScfParams::new(32, 7, 8).unwrap()
}

fn cfd(threshold: f64) -> CyclostationaryDetector {
    CyclostationaryDetector::new(params(), threshold, 1).unwrap()
}

/// A shadowing overlay usable as a fusion member channel: the scenario
/// crate's pipeline stages, applied without a base AWGN stage.
fn shadowing(sigma_db: f64) -> MemberChannel {
    let overlay = ChannelPipeline::new(vec![ChannelStage::LogNormalShadowing {
        sigma_db,
        noise_power: 1.0,
    }]);
    MemberChannel::new(move |samples, seed| {
        overlay
            .impair(samples.to_vec(), seed)
            .expect("validated overlay")
    })
}

/// Spread member thresholds around the CFD operating point so mid-SNR
/// observations genuinely split the fleet's votes.
fn member_thresholds(members: usize) -> Vec<f64> {
    (0..members).map(|m| 0.15 + 0.1 * m as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Or` and `And` are exactly `KOfN(1)` and `KOfN(N)`: same verdict,
    /// same fused statistic (the vote count), same threshold, for any
    /// observation and fleet size.
    #[test]
    fn or_and_are_k_of_n_aliases(
        seed in 0u64..1000,
        snr_centi_db in -500i32..1000,
        members in 1usize..5,
    ) {
        let scenario = RadioScenario::preset("bpsk-awgn", params().samples_needed())
            .expect("built-in preset")
            .with_seed(seed)
            .at_snr(snr_centi_db as f64 / 100.0);
        let samples = scenario.observe(Hypothesis::Occupied, 0).unwrap().samples;
        let fleet = |rule| {
            let mut fleet = FusionCenter::new(rule);
            for threshold in member_thresholds(members) {
                fleet = fleet.with_member(cfd(threshold));
            }
            fleet
        };
        let decide = |rule| {
            fleet(rule)
                .decide(&mut Observation::from_samples(samples.clone()))
                .unwrap()
        };
        prop_assert_eq!(decide(FusionRule::Or), decide(FusionRule::KOfN(1)));
        prop_assert_eq!(decide(FusionRule::And), decide(FusionRule::KOfN(members)));
    }

    /// For every quota `k`, the fused verdict equals counting the
    /// per-sensor reference decisions: solo detectors with the members'
    /// configurations, run independently over the same observation.
    #[test]
    fn k_of_n_matches_per_sensor_reference_counting(
        seed in 0u64..1000,
        snr_centi_db in -500i32..1000,
        members in 1usize..5,
    ) {
        let scenario = RadioScenario::preset("bpsk-awgn", params().samples_needed())
            .expect("built-in preset")
            .with_seed(seed)
            .at_snr(snr_centi_db as f64 / 100.0);
        let samples = scenario.observe(Hypothesis::Occupied, 0).unwrap().samples;
        // The reference: each member's solo decision, counted by hand.
        let reference_votes = member_thresholds(members)
            .into_iter()
            .map(|threshold| {
                let mut solo = cfd(threshold);
                let mut observation = Observation::from_samples(samples.clone());
                usize::from(solo.decide(&mut observation).unwrap().is_signal())
            })
            .sum::<usize>();
        for k in 1..=members {
            let mut fleet = FusionCenter::new(FusionRule::KOfN(k));
            for threshold in member_thresholds(members) {
                fleet = fleet.with_member(cfd(threshold));
            }
            let fused = fleet
                .decide(&mut Observation::from_samples(samples.clone()))
                .unwrap();
            prop_assert_eq!(fused.statistic, reference_votes as f64, "k = {}", k);
            prop_assert_eq!(
                fused.is_signal(),
                reference_votes >= k,
                "KOfN({}) must fire iff {} reference votes reach the quota",
                k,
                reference_votes
            );
        }
    }

    /// A fused fleet inside the parallel sweep engine: per-sensor
    /// shadowing realisations are derived from observation content, so
    /// the `RocTable` is bit-identical for every worker count.
    #[test]
    fn fused_sweep_is_identical_across_worker_counts(
        seed in 0u64..1000,
        workers in 2usize..5,
    ) {
        let scenario = RadioScenario::preset("bpsk-awgn", params().samples_needed())
            .expect("built-in preset")
            .with_seed(seed);
        let fleet = FusionCenter::new(FusionRule::Or)
            .with_impaired_member(cfd(0.35), shadowing(6.0))
            .with_impaired_member(cfd(0.35), shadowing(6.0))
            .with_impaired_member(cfd(0.35), shadowing(6.0));
        let run = |workers: usize| {
            SweepBuilder::new(&scenario)
                .sweep(SnrSweep::new(vec![0.0, 8.0], 6).unwrap())
                .backend(fleet.clone())
                .workers(workers)
                .run()
                .unwrap()
        };
        prop_assert_eq!(&run(1), &run(workers), "diverged with {} workers", workers);
    }
}

/// Soft combining over impaired members is deterministic: a replica of
/// the fleet reproduces every decision bit-for-bit, and the fused
/// statistic moves when the observation does.
#[test]
fn soft_combining_is_deterministic_across_replicas() {
    let scenario = RadioScenario::preset("bpsk-awgn", params().samples_needed())
        .unwrap()
        .with_seed(33)
        .at_snr(5.0);
    let mut fleet = FusionCenter::new(FusionRule::SoftCombine { threshold: 0.9 })
        .with_impaired_member(cfd(0.35), shadowing(8.0))
        .with_impaired_member(cfd(0.35), shadowing(8.0))
        .with_member(cfd(0.35));
    let mut replica = fleet.clone();
    let mut statistics = Vec::new();
    for trial in 0..6 {
        let samples = scenario
            .observe(Hypothesis::Occupied, trial)
            .unwrap()
            .samples;
        let a = fleet
            .decide(&mut Observation::from_samples(samples.clone()))
            .unwrap();
        let b = replica
            .decide(&mut Observation::from_samples(samples))
            .unwrap();
        assert_eq!(
            a.statistic.to_bits(),
            b.statistic.to_bits(),
            "trial {trial}"
        );
        assert_eq!(a, b, "trial {trial}");
        statistics.push(a.statistic);
    }
    statistics.dedup();
    assert!(statistics.len() > 1, "statistics must vary across trials");
}

/// The tentpole acceptance test: one `FusionCenter` value works unchanged
/// as a `SweepBuilder` backend *and* as a `SensingScheduler` channel
/// backend, and the scheduler path is decision-identical to serial
/// streaming over the same hops.
#[test]
fn fusion_center_runs_in_sweeps_and_scheduler_channels() {
    let fleet = FusionCenter::new(FusionRule::KOfN(2))
        .with_member(cfd(0.25))
        .with_member(cfd(0.35))
        .with_impaired_member(cfd(0.35), shadowing(4.0));

    // --- In a SweepBuilder sweep, next to a solo detector -------------
    let scenario = RadioScenario::preset("bpsk-awgn", params().samples_needed())
        .unwrap()
        .with_seed(17);
    let table = SweepBuilder::new(&scenario)
        .sweep(SnrSweep::new(vec![10.0], 12).unwrap())
        .backend(cfd(0.35))
        .backend(fleet.clone())
        .workers(3)
        .run()
        .unwrap();
    let fused_row = table
        .row("fusion-2of3(cfd+cfd+cfd)", 10.0)
        .expect("the fleet appears in the table under its fusion label");
    assert!(fused_row.pd > 0.5, "pd = {}", fused_row.pd);
    assert!(table.row("cfd", 10.0).is_some());

    // --- In a SensingScheduler channel --------------------------------
    let fft_len = 32usize;
    let channels = 3usize;
    let events = ServiceTraffic::new("bpsk-awgn", channels, 10, fft_len)
        .unwrap()
        .with_seed(29)
        .at_snr(8.0)
        .synthesize()
        .unwrap();
    let logs: Vec<DecisionLog> = (0..channels).map(|_| DecisionLog::new()).collect();
    let mut builder = SensingScheduler::builder(
        ServiceConfig::new(2)
            .with_queue_capacity(events.len().max(1))
            .with_backpressure(Backpressure::Block),
    );
    for (channel, log) in logs.iter().enumerate() {
        builder = builder.subscribe(ChannelSubscription::new(
            channel as u64,
            StreamingConfig::new(params()),
            fleet.clone(),
            log.clone(),
        ));
    }
    let scheduler = builder.spawn().unwrap();
    for event in &events {
        match event {
            TrafficEvent::Hop {
                channel, samples, ..
            } => scheduler.push(*channel, samples).unwrap(),
            TrafficEvent::Park { channel } => scheduler.park(*channel).unwrap(),
        }
    }
    let report = scheduler.join().unwrap();
    assert_eq!(report.drops, 0);
    let scheduled: Vec<Vec<Decision>> = logs.iter().map(DecisionLog::take).collect();
    assert!(
        scheduled.iter().any(|channel| !channel.is_empty()),
        "the fleet must produce streaming decisions"
    );

    // Serial reference: a StreamingSensor wrapping a fleet replica per
    // channel, fed the same per-channel event order.
    let mut sensors: Vec<StreamingSensor<FusionCenter>> = (0..channels)
        .map(|_| StreamingSensor::new(StreamingConfig::new(params()), fleet.clone()).unwrap())
        .collect();
    let mut serial: Vec<Vec<Decision>> = vec![Vec::new(); channels];
    for event in &events {
        match event {
            TrafficEvent::Hop {
                channel, samples, ..
            } => sensors[*channel as usize]
                .push_into(samples, &mut serial[*channel as usize])
                .unwrap(),
            TrafficEvent::Park { channel } => sensors[*channel as usize].park(),
        }
    }
    for (channel, (a, b)) in scheduled.iter().zip(&serial).enumerate() {
        assert_eq!(a, b, "channel {channel} diverged from serial streaming");
    }
}

/// The quantified shadowing-margin claim (see README "Cooperative
/// sensing"): at 0 dB SNR under 12 dB log-normal shadowing, a single
/// shadowed CFD sensor calibrated to Pfa 0.1 detects less than half the
/// occupied trials, while a 4-sensor OR-fused fleet — each member behind
/// its own independent shadow realisation, thresholds re-calibrated to
/// Pfa 0.1/4 so the fleet's false-alarm rate stays at or below the solo
/// budget — recovers ≥ 0.9 Pd. Every number here is deterministic: the
/// calibration, the trials and the per-sensor realisations are all
/// seeded, and fused sweeps are worker-count invariant.
#[test]
fn or_fusion_recovers_the_shadowing_margin() {
    let params = ScfParams::new(32, 7, 128).unwrap();
    let cfd128 = |t: f64| CyclostationaryDetector::new(params.clone(), t, 1).unwrap();
    let scenario = RadioScenario::preset("bpsk-awgn", params.samples_needed())
        .unwrap()
        .with_seed(41);
    let sigma_db = 12.0;
    let snr_db = 0.0;
    let target_pfa = 0.1;
    let t_single = calibrate_cfd_threshold(&params, 1, target_pfa, 2000, 7).unwrap();
    let t_member = calibrate_cfd_threshold(&params, 1, target_pfa / 4.0, 2000, 7).unwrap();
    assert!(
        t_member > t_single,
        "the fleet pays a per-sensor threshold premium"
    );

    let single = FusionCenter::new(FusionRule::Or)
        .with_impaired_member(cfd128(t_single), shadowing(sigma_db));
    let mut fleet = FusionCenter::new(FusionRule::Or);
    for _ in 0..4 {
        fleet = fleet.with_impaired_member(cfd128(t_member), shadowing(sigma_db));
    }
    let table = SweepBuilder::new(&scenario)
        .sweep(SnrSweep::new(vec![snr_db], 400).unwrap())
        .backend(single)
        .backend(fleet)
        .workers(4)
        .run()
        .unwrap();
    let single_row = &table.rows[0];
    let fleet_row = &table.rows[1];
    assert!(
        single_row.pd < 0.5,
        "a single shadowed sensor must sit below 0.5 Pd here, got {}",
        single_row.pd
    );
    assert!(
        fleet_row.pd >= 0.9,
        "the 4-sensor OR fleet must recover >= 0.9 Pd, got {}",
        fleet_row.pd
    );
    assert!(
        fleet_row.pfa <= single_row.pfa,
        "fleet Pfa {} must not exceed the solo budget {}",
        fleet_row.pfa,
        single_row.pfa
    );
}
