//! The acceptance test for the open sensing surface: custom third-party
//! backends — defined only in this test file, outside every workspace
//! crate — run through `SweepBuilder` in a parallel multi-worker sweep and
//! appear in the `RocTable` next to the built-in detectors.
//!
//! Two registration paths are exercised:
//!
//! * a `Clone + Sync` backend, which is automatically its own
//!   [`BackendRecipe`] via the blanket impl;
//! * a non-`Clone` backend registered through a hand-written
//!   [`BackendRecipe`] (the path a stateful platform-like detector would
//!   take).

use cfd_core::backend::{BackendRecipe, Decision, Observation, SensingBackend};
use cfd_core::error::CfdError;
use cfd_dsp::detector::{CyclostationaryDetector, Detector, EnergyDetector};
use cfd_dsp::scf::{ScfEngine, ScfParams};
use cfd_scenario::prelude::*;

/// A third-party detector using the shared spectra cache: thresholds the
/// total cyclic energy outside the `a = 0` ridge, normalised by the ridge
/// energy — a different statistic from the built-in max-feature CFD.
#[derive(Debug, Clone)]
struct CyclicEnergyDetector {
    engine: ScfEngine,
    threshold: f64,
}

impl CyclicEnergyDetector {
    fn new(params: ScfParams, threshold: f64) -> Self {
        CyclicEnergyDetector {
            engine: ScfEngine::new(params).expect("valid params"),
            threshold,
        }
    }
}

impl SensingBackend for CyclicEnergyDetector {
    fn label(&self) -> String {
        "cyclic-energy".into()
    }

    fn decide(&mut self, observation: &mut Observation) -> Result<Decision, CfdError> {
        let scf = observation.scf_for(&self.engine)?;
        let profile = scf.cyclic_profile();
        let ridge = profile[scf.max_offset()].max(f64::MIN_POSITIVE);
        let off_ridge: f64 = profile.iter().sum::<f64>() - profile[scf.max_offset()];
        Ok(Decision::new(
            off_ridge / ridge / (profile.len() - 1) as f64,
            self.threshold,
        ))
    }
}

/// A deliberately non-`Clone` backend (it carries a decision counter, i.e.
/// per-replica mutable state): an OR-vote over an energy detector and a
/// CFD detector.
#[derive(Debug)]
struct VotingBackend {
    energy: EnergyDetector,
    cfd: CyclostationaryDetector,
    decisions_taken: u64,
}

impl SensingBackend for VotingBackend {
    fn label(&self) -> String {
        "either-vote".into()
    }

    fn decide(&mut self, observation: &mut Observation) -> Result<Decision, CfdError> {
        self.decisions_taken += 1;
        let energy = self.energy.detect(observation.samples())?;
        let cfd_scf = observation.scf_for(self.cfd.engine())?;
        let cfd = self.cfd.detect_from_scf(cfd_scf);
        // Report the CFD statistic/threshold, but fire if either does.
        let mut decision = Decision::from_outcome(cfd);
        if energy.decision.is_signal() {
            decision.verdict = cfd_dsp::detector::Verdict::SignalPresent;
        }
        Ok(decision)
    }
}

/// The hand-written recipe for the non-`Clone` backend: each sweep worker
/// gets a fresh replica with its own counter.
#[derive(Debug, Clone)]
struct VotingRecipe {
    params: ScfParams,
    observation_len: usize,
}

impl BackendRecipe for VotingRecipe {
    fn label(&self) -> String {
        "either-vote".into()
    }

    fn build(&self) -> Result<Box<dyn SensingBackend + Send>, CfdError> {
        Ok(Box::new(VotingBackend {
            energy: EnergyDetector::new(1.0, 0.1, self.observation_len)?,
            cfd: CyclostationaryDetector::new(self.params.clone(), 0.35, 1)?,
            decisions_taken: 0,
        }))
    }
}

#[test]
fn custom_backends_run_in_a_parallel_sweep_and_appear_in_the_table() {
    let params = ScfParams::new(32, 7, 16).unwrap();
    let len = params.samples_needed();
    let scenario = RadioScenario::preset("bpsk-awgn", len)
        .expect("built-in preset")
        .with_seed(23);
    let sweep = SnrSweep::new(vec![-10.0, 0.0, 10.0], 8).unwrap();

    let run = |workers: usize| {
        SweepBuilder::new(&scenario)
            .sweep(sweep.clone())
            // Built-ins for comparison…
            .backend(EnergyDetector::new(1.0, 0.1, len).unwrap())
            .backend(CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap())
            // …plus the two third-party registration paths.
            .backend(CyclicEnergyDetector::new(params.clone(), 0.15))
            .backend(VotingRecipe {
                params: params.clone(),
                observation_len: len,
            })
            .workers(workers)
            .run()
            .unwrap()
    };

    let table = run(3);
    // All four backends appear, in insertion order, under their own labels.
    assert_eq!(
        table.detectors(),
        vec![
            "energy".to_string(),
            "cfd".into(),
            "cyclic-energy".into(),
            "either-vote".into(),
        ]
    );
    // Every (snr, backend) pair has a row with a sane estimate.
    for &snr in &sweep.snr_points_db {
        for label in ["cyclic-energy", "either-vote"] {
            let row = table.row(label, snr).unwrap_or_else(|| {
                panic!("custom backend {label} missing at {snr} dB");
            });
            assert!((0.0..=1.0).contains(&row.pd));
            assert!((0.0..=1.0).contains(&row.pfa));
            assert_eq!(row.trials, sweep.trials);
        }
    }
    // The OR-vote fires at least as often as the energy detector alone.
    for &snr in &sweep.snr_points_db {
        let energy = table.row("energy", snr).unwrap();
        let vote = table.row("either-vote", snr).unwrap();
        assert!(vote.pd >= energy.pd, "vote must dominate energy at {snr}");
    }
    // Custom backends keep the engine deterministic: the parallel table is
    // bit-identical to the serial reference.
    assert_eq!(table, run(1));

    // And the custom detectors survive the JSON emission path (labels are
    // escaped, schema versioned).
    let json = table.to_json();
    assert!(json.starts_with("{\"schema\":2,"));
    assert!(json.contains("\"detector\":\"cyclic-energy\""));
    assert!(json.contains("\"detector\":\"either-vote\""));
}

#[test]
fn custom_backends_share_the_per_trial_spectra_cache() {
    // A custom backend asking for the DSCF at the same ScfParams as a
    // built-in CFD detector reuses the observation's cached matrix: the
    // cache is keyed by parameters, not by requesting type.
    let params = ScfParams::new(32, 7, 16).unwrap();
    let scenario = RadioScenario::preset("bpsk-awgn", params.samples_needed())
        .expect("built-in preset")
        .with_seed(5);
    let trial = scenario.observe(Hypothesis::Occupied, 0).unwrap();
    let mut observation = Observation::from_samples(trial.samples);

    let mut custom = CyclicEnergyDetector::new(params.clone(), 0.15);
    let mut builtin = CyclostationaryDetector::new(params, 0.35, 1).unwrap();
    custom.decide(&mut observation).unwrap();
    assert_eq!(observation.computed(), 1);
    SensingBackend::decide(&mut builtin, &mut observation).unwrap();
    assert_eq!(observation.computed(), 1, "same params, same cache slot");
}
