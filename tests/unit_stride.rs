//! Pins the unit-stride DSCF rework (PR 7) against the eq.-3 golden model:
//!
//! * the segment-decomposed, cache-blocked [`ScfEngine`] must equal
//!   [`dscf_reference`] **bitwise** over random `fft_len × max_offset ×
//!   blocks × stride` geometries — including offsets at the validity
//!   boundary (`2M = K/2 - 1`-adjacent), where the `f±a` runs wrap the
//!   mod-K seam and every row splits into multiple segments;
//! * the thread-parallel analytic SoC must equal its serial reference
//!   **bitwise** (DSCF and every platform counter) for 1–4 worker threads,
//!   including platforms with more tiles than DSCF columns (entirely idle
//!   tiles);
//! * parameter errors are structured values, not panics: the overflowing
//!   and too-wide `max_offset` cases for both `ScfParams` and
//!   `CfdApplication`.

use cfd_core::app::CfdApplication;
use cfd_core::error::CfdError;
use cfd_dsp::complex::Cplx;
use cfd_dsp::detector::CyclostationaryDetector;
use cfd_dsp::error::DspError;
use cfd_dsp::scf::{dscf_reference, ScfEngine, ScfMatrix, ScfParams};
use cfd_dsp::signal::{modulated_signal, ModulatedSignalSpec};
use proptest::prelude::*;
use tiled_soc::config::{ExecutionMode, SocConfig};
use tiled_soc::soc::TiledSoc;

fn signal_for(samples: usize, seed: u64) -> Vec<Cplx> {
    let spec = ModulatedSignalSpec {
        samples_per_symbol: 4,
        ..Default::default()
    };
    modulated_signal(samples, &spec, seed).unwrap()
}

fn analytic_soc(tiles: usize, threads: usize, max_offset: usize, fft_len: usize) -> TiledSoc {
    let config = SocConfig::paper()
        .with_tiles(tiles)
        .with_mode(ExecutionMode::Analytic)
        .with_analytic_threads(threads);
    TiledSoc::new(config, max_offset, fft_len).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The re-blocked engine vs the eq.-3 reference, bit for bit, over
    /// random geometries including overlapping blocks (`stride <
    /// fft_len`). `max_offset` is drawn up to the validity limit, so a
    /// share of the cases have rows whose `f±a` runs wrap the mod-K seam
    /// and decompose into more than one contiguous segment.
    #[test]
    fn engine_is_bit_identical_to_reference(
        seed in 0u64..1000,
        fft_pow in 4u32..8,
        offset_raw in 1usize..1000,
        blocks in 1usize..5,
        stride_raw in 1usize..1000,
    ) {
        let fft_len = 1usize << fft_pow;
        let max_offset = 1 + offset_raw % (fft_len / 2 - 1);
        let stride = 1 + stride_raw % fft_len;
        let params = ScfParams::new(fft_len, max_offset, blocks)
            .unwrap()
            .with_stride(stride);
        let signal = signal_for(params.samples_needed(), seed);
        let golden = dscf_reference(&signal, &params).unwrap();
        let engine = ScfEngine::new(params.clone()).unwrap();
        let mut fast = ScfMatrix::zeros(params.max_offset);
        engine.compute_into(&signal, &mut fast).unwrap();
        prop_assert_eq!(fast.as_slice(), golden.as_slice());
    }

    /// Rows at the maximum valid offset (`2M = K - 2`, every row wrapping)
    /// stay exact too — the segment cutter's worst case.
    #[test]
    fn engine_is_exact_at_the_wrap_heavy_boundary(
        seed in 0u64..1000,
        fft_pow in 4u32..7,
        blocks in 1usize..4,
    ) {
        let fft_len = 1usize << fft_pow;
        let max_offset = fft_len / 2 - 1;
        let params = ScfParams::new(fft_len, max_offset, blocks).unwrap();
        let signal = signal_for(params.samples_needed(), seed);
        let golden = dscf_reference(&signal, &params).unwrap();
        let fast = ScfEngine::new(params).unwrap().compute(&signal).unwrap();
        prop_assert_eq!(fast.as_slice(), golden.as_slice());
    }

    /// The threaded analytic SoC vs the serial reference (and vs
    /// `dscf_reference`): bit-identical DSCF and equal platform counters
    /// at every worker count 1–4, including platforms with more tiles
    /// than grid columns, where trailing tiles hold no active task.
    #[test]
    fn threaded_analytic_soc_matches_serial_and_reference(
        seed in 0u64..1000,
        tiles in 1usize..18,
        fft_pow in 4u32..7,
        offset_raw in 1usize..1000,
        blocks in 1usize..4,
        threads in 1usize..5,
    ) {
        let fft_len = 1usize << fft_pow;
        let max_offset = 1 + offset_raw % (fft_len / 2 - 1);
        let signal = signal_for(fft_len * blocks, seed);
        let mut serial = analytic_soc(tiles, 1, max_offset, fft_len);
        let mut threaded = analytic_soc(tiles, threads, max_offset, fft_len);
        let golden = serial.run(&signal, blocks).unwrap();
        let fast = threaded.run(&signal, blocks).unwrap();
        prop_assert_eq!(fast.scf.as_slice(), golden.scf.as_slice());
        prop_assert_eq!(&fast.per_tile_cycles, &golden.per_tile_cycles);
        prop_assert_eq!(fast.inter_tile_transfers, golden.inter_tile_transfers);
        prop_assert_eq!(fast.source_inputs, golden.source_inputs);
        prop_assert_eq!(fast.blocks, golden.blocks);
        let params = ScfParams::new(fft_len, max_offset, blocks).unwrap();
        let reference = dscf_reference(&signal, &params).unwrap();
        prop_assert_eq!(fast.scf.as_slice(), reference.as_slice());
    }
}

/// A 16-tile platform over a 15-column grid leaves at least one tile with
/// no active task; threaded runs must stay exact (and not panic on the
/// empty accumulator slabs).
#[test]
fn idle_tiles_survive_every_thread_count() {
    let (fft_len, max_offset, blocks) = (32usize, 7usize, 3usize);
    let signal = signal_for(fft_len * blocks, 99);
    let golden = analytic_soc(16, 1, max_offset, fft_len)
        .run(&signal, blocks)
        .unwrap();
    for threads in 1..=4 {
        let fast = analytic_soc(16, threads, max_offset, fft_len)
            .run(&signal, blocks)
            .unwrap();
        assert_eq!(fast.scf.as_slice(), golden.scf.as_slice());
        assert_eq!(fast.per_tile_cycles, golden.per_tile_cycles);
        assert_eq!(fast.inter_tile_transfers, golden.inter_tile_transfers);
    }
}

/// `analytic_threads: 0` ("one worker per core") and a lowered process
/// budget both resolve to valid thread counts and stay exact; pool
/// spawners (here: the sensing-service scheduler) register their worker
/// count through the same budget so workers × SoC threads never
/// oversubscribes. One sequential test: the budget is process-global, so
/// splitting these cases across parallel libtest threads would race.
#[test]
fn thread_budget_caps_the_fan_out_without_changing_results() {
    let (fft_len, max_offset, blocks) = (64usize, 15usize, 2usize);
    let signal = signal_for(fft_len * blocks, 7);
    let golden = analytic_soc(4, 1, max_offset, fft_len)
        .run(&signal, blocks)
        .unwrap();
    cfd_core::set_analytic_thread_budget(2);
    let capped = analytic_soc(4, 0, max_offset, fft_len)
        .run(&signal, blocks)
        .unwrap();
    cfd_core::set_analytic_thread_budget(usize::MAX);
    assert!(cfd_core::analytic_thread_budget() >= 4);
    assert_eq!(capped.scf.as_slice(), golden.scf.as_slice());
    assert_eq!(capped.per_tile_cycles, golden.per_tile_cycles);

    // Spawning a SensingScheduler with k workers divides the budget by k,
    // exactly like the sweep engine's worker pool.
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    for workers in [1usize, 3] {
        let params = ScfParams::new(32, 7, 4).unwrap();
        let scheduler = cfd_core::SensingScheduler::builder(cfd_core::ServiceConfig::new(workers))
            .subscribe(cfd_core::ChannelSubscription::new(
                0,
                cfd_core::StreamingConfig::new(params.clone()),
                CyclostationaryDetector::new(params, 0.35, 1).unwrap(),
                cfd_core::service::DecisionLog::new(),
            ))
            .spawn()
            .unwrap();
        assert_eq!(
            cfd_core::analytic_thread_budget(),
            (parallelism / workers).max(1),
            "{workers} scheduler workers must share the machine budget"
        );
        scheduler.join().unwrap();
    }
    cfd_core::set_analytic_thread_budget(usize::MAX);
}

/// Parameter errors are structured `InvalidParameter` values — for the
/// grid-wider-than-`fft_len` case and for the doubling that would
/// overflow `usize` — at both the `ScfParams` and `CfdApplication`
/// layers.
#[test]
fn too_wide_grids_are_structured_errors() {
    let too_wide = ScfParams::new(256, 128, 1).unwrap_err();
    assert!(matches!(
        too_wide,
        DspError::InvalidParameter {
            name: "max_offset",
            ..
        }
    ));
    let overflow = ScfParams::new(256, usize::MAX / 2 + 1, 1).unwrap_err();
    assert!(
        matches!(overflow, DspError::InvalidParameter { name: "max_offset", ref message }
            if message.contains("overflows"))
    );
    let wide_fft = ScfParams {
        fft_len: i32::MAX as usize + 1,
        max_offset: 1,
        num_blocks: 1,
        block_stride: 1,
        window: cfd_dsp::window::Window::Rectangular,
    }
    .validate()
    .unwrap_err();
    assert!(matches!(
        wide_fft,
        DspError::InvalidParameter {
            name: "fft_len",
            ..
        }
    ));
    let app = CfdApplication::new(256, usize::MAX / 2 + 1, 1).unwrap_err();
    assert!(matches!(
        app,
        CfdError::InvalidParameter {
            name: "max_offset",
            ..
        }
    ));
}
