//! Pins the many-channel sensing scheduler (`cfd_core::service`) against
//! serial per-channel driving and its backpressure contract:
//!
//! * **decision identity** — for any channel count, worker count 1–4,
//!   backpressure policy (with ample capacity) and hop geometry, the
//!   scheduler's per-channel decision sequence over synthesized
//!   [`ServiceTraffic`] (including Markov park/unpark bursts) is
//!   **bitwise** identical to driving each channel's [`StreamingSensor`]
//!   serially over the same events — sharding and queueing reorder work
//!   across channels, never within one;
//! * **`Block` never drops** — even with a one-slot ingress queue, every
//!   pushed hop is processed (`drops() == 0`, `report.hops == pushed`)
//!   and decisions stay identical to serial driving;
//! * **`DropOldest` drops are exactly accounted** — under a deliberately
//!   slow backend and a tiny queue, `pushed == report.hops +
//!   report.drops` holds exactly, drops are observed (> 0), and the
//!   global `service.drops` telemetry counter advances by exactly
//!   `report.drops` (this is the only test in this binary that sheds, so
//!   the delta is race-free under parallel libtest threads);
//! * **shard stability** — [`shard_for`] is pinned to literal values (the
//!   SplitMix64 finaliser is stable across runs, platforms and
//!   subscription order) and [`SensingScheduler::shard_of`] agrees.

use cfd_core::backend::{Decision, Observation, SensingBackend};
use cfd_core::error::CfdError;
use cfd_core::service::{
    shard_for, Backpressure, ChannelSubscription, DecisionLog, SensingScheduler, ServiceConfig,
};
use cfd_core::stream::{StreamingConfig, StreamingSensor};
use cfd_dsp::detector::CyclostationaryDetector;
use cfd_dsp::scf::ScfParams;
use cfd_scenario::service_traffic::{ActivityModel, ServiceTraffic, TrafficEvent};
use proptest::prelude::*;

/// Drives the synthesized events through a scheduler and returns each
/// channel's decisions, in hop order.
fn schedule(
    events: &[TrafficEvent],
    channels: usize,
    params: &ScfParams,
    refresh: usize,
    config: ServiceConfig,
) -> (Vec<Vec<Decision>>, u64) {
    let detector = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
    let mut builder = SensingScheduler::builder(config);
    let logs: Vec<DecisionLog> = (0..channels).map(|_| DecisionLog::new()).collect();
    for (channel, log) in logs.iter().enumerate() {
        builder = builder.subscribe(ChannelSubscription::new(
            channel as u64,
            StreamingConfig::new(params.clone()).with_refresh_interval(refresh),
            detector.clone(),
            log.clone(),
        ));
    }
    let scheduler = builder.spawn().unwrap();
    for event in events {
        match event {
            TrafficEvent::Hop {
                channel, samples, ..
            } => scheduler.push(*channel, samples).unwrap(),
            TrafficEvent::Park { channel } => scheduler.park(*channel).unwrap(),
        }
    }
    let report = scheduler.join().unwrap();
    (logs.iter().map(DecisionLog::take).collect(), report.drops)
}

/// The serial reference: one [`StreamingSensor`] per channel, fed the same
/// events in the same per-channel order.
fn drive_serially(
    events: &[TrafficEvent],
    channels: usize,
    params: &ScfParams,
    refresh: usize,
) -> Vec<Vec<Decision>> {
    let detector = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
    let mut sensors: Vec<StreamingSensor<CyclostationaryDetector>> = (0..channels)
        .map(|_| {
            StreamingSensor::new(
                StreamingConfig::new(params.clone()).with_refresh_interval(refresh),
                detector.clone(),
            )
            .unwrap()
        })
        .collect();
    let mut decisions: Vec<Vec<Decision>> = vec![Vec::new(); channels];
    for event in events {
        match event {
            TrafficEvent::Hop {
                channel, samples, ..
            } => sensors[*channel as usize]
                .push_into(samples, &mut decisions[*channel as usize])
                .unwrap(),
            TrafficEvent::Park { channel } => sensors[*channel as usize].park(),
        }
    }
    decisions
}

fn assert_bitwise_identical(scheduled: &[Vec<Decision>], serial: &[Vec<Decision>]) {
    assert_eq!(scheduled.len(), serial.len());
    for (channel, (a, b)) in scheduled.iter().zip(serial).enumerate() {
        assert_eq!(a.len(), b.len(), "channel {channel} decision count");
        for (hop, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.statistic.to_bits(),
                y.statistic.to_bits(),
                "channel {channel} hop {hop} statistic must be bit-identical"
            );
            assert_eq!(x, y, "channel {channel} hop {hop}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Scheduler output is decision-identical to serial per-channel
    /// driving under common random numbers, for any worker count,
    /// backpressure policy and hop geometry — including bursty traffic
    /// that parks and re-warms channels mid-stream.
    #[test]
    fn scheduler_is_decision_identical_to_serial_driving(
        seed in 0u64..1000,
        channels in 1usize..12,
        workers in 1usize..5,
        fft_pow in 4u32..6,
        window in 2usize..5,
        refresh in 1usize..4,
    ) {
        // The vendored proptest has no bool strategy; derive the policy
        // and burstiness coins from the seed.
        let drop_oldest = seed % 2 == 0;
        let bursty = seed % 3 == 0;
        let fft_len = 1usize << fft_pow;
        let params = ScfParams::new(fft_len, fft_len / 4 - 1, window).unwrap();
        let slots = window + 6;
        let mut traffic = ServiceTraffic::new("bpsk-awgn", channels, slots, fft_len)
            .unwrap()
            .with_seed(seed)
            .at_snr(3.0);
        if bursty {
            traffic = traffic.with_activity(ActivityModel::bursty(0.8, 0.4).unwrap());
        }
        let events = traffic.synthesize().unwrap();
        // Ample capacity: DropOldest must also shed nothing here, which is
        // exactly what keeps it decision-identical.
        let policy = if drop_oldest { Backpressure::DropOldest } else { Backpressure::Block };
        let config = ServiceConfig::new(workers)
            .with_queue_capacity(events.len().max(1))
            .with_backpressure(policy);
        let (scheduled, drops) = schedule(&events, channels, &params, refresh, config);
        prop_assert_eq!(drops, 0);
        let serial = drive_serially(&events, channels, &params, refresh);
        assert_bitwise_identical(&scheduled, &serial);
    }
}

/// `Block` backpressure never sheds: with the smallest legal queue (one
/// slot per worker) and producers far ahead of the workers, every pushed
/// hop is processed and the decisions still match serial driving exactly.
#[test]
fn block_backpressure_never_drops_a_hop() {
    let params = ScfParams::new(32, 7, 3).unwrap();
    let channels = 9usize;
    let events = ServiceTraffic::new("bpsk-awgn", channels, 8, 32)
        .unwrap()
        .with_seed(21)
        .at_snr(5.0)
        .synthesize()
        .unwrap();
    let config = ServiceConfig::new(3)
        .with_queue_capacity(1)
        .with_backpressure(Backpressure::Block);
    let detector = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
    let logs: Vec<DecisionLog> = (0..channels).map(|_| DecisionLog::new()).collect();
    let mut builder = SensingScheduler::builder(config);
    for (channel, log) in logs.iter().enumerate() {
        builder = builder.subscribe(ChannelSubscription::new(
            channel as u64,
            StreamingConfig::new(params.clone()),
            detector.clone(),
            log.clone(),
        ));
    }
    let scheduler = builder.spawn().unwrap();
    let mut pushed = 0u64;
    for event in &events {
        if let TrafficEvent::Hop {
            channel, samples, ..
        } = event
        {
            scheduler.push(*channel, samples).unwrap();
            pushed += 1;
        }
    }
    assert_eq!(scheduler.pushed(), pushed);
    let report = scheduler.join().unwrap();
    assert_eq!(report.drops, 0, "Block must never shed a hop");
    assert_eq!(report.hops, pushed, "every pushed hop is processed");
    let scheduled: Vec<Vec<Decision>> = logs.iter().map(DecisionLog::take).collect();
    let serial = drive_serially(&events, channels, &params, 64);
    assert_bitwise_identical(&scheduled, &serial);
}

/// A correct but deliberately slow backend, to hold the worker busy while
/// the producer floods a tiny ingress queue.
#[derive(Debug, Clone)]
struct SlowBackend {
    inner: CyclostationaryDetector,
}

impl SensingBackend for SlowBackend {
    fn label(&self) -> String {
        "slow-cfd".into()
    }

    fn decide(&mut self, observation: &mut Observation) -> Result<Decision, CfdError> {
        std::thread::sleep(std::time::Duration::from_millis(2));
        SensingBackend::decide(&mut self.inner, observation)
    }
}

/// Under `DropOldest`, sheds are exactly accounted: every pushed hop is
/// either processed or counted, both by [`SensingScheduler::drops`] /
/// `ServiceReport::drops` and by the global `service.drops` counter.
#[test]
fn drop_oldest_accounts_every_drop() {
    let params = ScfParams::new(16, 3, 1).unwrap(); // window 1: every hop decides
    let drops_counter = cfd_telemetry::counter("service.drops");
    let counter_before = drops_counter.value();
    let traffic = ServiceTraffic::new("bpsk-awgn", 2, 64, 16)
        .unwrap()
        .with_seed(5)
        .at_snr(0.0);
    let config = ServiceConfig::new(1)
        .with_queue_capacity(2)
        .with_backpressure(Backpressure::DropOldest);
    let detector = SlowBackend {
        inner: CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap(),
    };
    let log = DecisionLog::new();
    let scheduler = SensingScheduler::builder(config)
        .subscribe(ChannelSubscription::new(
            0,
            StreamingConfig::new(params.clone()),
            detector.clone(),
            log.clone(),
        ))
        .subscribe(ChannelSubscription::new(
            1,
            StreamingConfig::new(params),
            detector,
            DecisionLog::new(),
        ))
        .spawn()
        .unwrap();
    traffic
        .visit(|event| {
            if let TrafficEvent::Hop {
                channel, samples, ..
            } = event
            {
                scheduler.push(channel, &samples)?;
            }
            Ok(())
        })
        .unwrap();
    let pushed = scheduler.pushed();
    let report = scheduler.join().unwrap();
    assert!(
        report.drops > 0,
        "a 2-slot queue in front of a 2 ms/decision backend must shed"
    );
    assert_eq!(
        report.hops + report.drops,
        pushed,
        "every pushed hop is processed or accounted as dropped"
    );
    assert_eq!(
        drops_counter.value() - counter_before,
        report.drops,
        "the service.drops counter advances by exactly the sheds"
    );
    // Window 1: every processed hop emits exactly one decision, so the
    // survivors are fully accounted too.
    assert_eq!(report.decisions, report.hops);
    assert!(!log.is_empty(), "the freshest hops survive and decide");
}

/// Channel placement is a pure, stable function of `(channel, workers)`:
/// pinned literal values (any change to the hash is a breaking change to
/// state locality), agreement with `shard_of`, and identity across two
/// independently built schedulers.
#[test]
fn shard_placement_is_stable() {
    // SplitMix64 finaliser outputs, pinned: stable across runs, platforms
    // and subscription order.
    assert_eq!(
        (0..8).map(|c| shard_for(c, 2)).collect::<Vec<_>>(),
        vec![1, 1, 0, 1, 0, 0, 0, 1]
    );
    assert_eq!(
        (0..8).map(|c| shard_for(c, 3)).collect::<Vec<_>>(),
        vec![1, 2, 1, 0, 1, 2, 2, 0]
    );
    assert_eq!(
        (0..8).map(|c| shard_for(c, 4)).collect::<Vec<_>>(),
        vec![3, 1, 2, 1, 2, 2, 0, 3]
    );
    assert_eq!(shard_for(1000, 4), 0);
    assert_eq!(shard_for(65535, 3), 1);
    for c in 0..100 {
        assert_eq!(shard_for(c, 1), 0, "one worker owns everything");
    }

    let params = ScfParams::new(32, 7, 4).unwrap();
    let detector = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
    let build = || {
        let mut builder = SensingScheduler::builder(ServiceConfig::new(4));
        for channel in 0..32u64 {
            builder = builder.subscribe(ChannelSubscription::new(
                channel,
                StreamingConfig::new(params.clone()),
                detector.clone(),
                DecisionLog::new(),
            ));
        }
        builder.spawn().unwrap()
    };
    let a = build();
    let b = build();
    for channel in 0..32u64 {
        assert_eq!(a.shard_of(channel), Some(shard_for(channel, 4)));
        assert_eq!(a.shard_of(channel), b.shard_of(channel));
    }
    a.join().unwrap();
    b.join().unwrap();
}
