//! Property-based tests over the scenario engine: SNR accuracy of the AWGN
//! channel, seeded reproducibility of Monte-Carlo trials, monotonicity of
//! the energy detector's detection probability in SNR, and bit-exact
//! equivalence of the parallel sweep engine with its serial reference.

use cfd_dsp::detector::{CyclostationaryDetector, EnergyDetector};
use cfd_dsp::scf::ScfParams;
use cfd_dsp::signal::signal_power;
use cfd_scenario::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The AWGN stage realises the requested SNR: a busy observation's
    /// power approaches `noise + noise * 10^(snr/10)` for long
    /// observations, for any SNR target and seed.
    #[test]
    fn awgn_channel_hits_requested_snr(snr_db in -5.0f64..10.0, seed in 0u64..1000) {
        let scenario = RadioScenario::preset("bpsk-awgn", 65_536)
            .expect("built-in preset")
            .with_seed(seed)
            .at_snr(snr_db);
        let h1 = scenario.observe(Hypothesis::Occupied, 0).unwrap();
        let expected = 1.0 + 10f64.powf(snr_db / 10.0);
        let measured = signal_power(&h1.samples);
        // 5% relative tolerance: the noise realisation contributes
        // O(1/sqrt(N)) fluctuation at N = 65536.
        prop_assert!(
            (measured - expected).abs() < 0.05 * expected,
            "snr {snr_db} dB: measured {measured}, expected {expected}"
        );
    }

    /// Trials are reproducible per (scenario, seed, trial) and independent
    /// across trials and seeds — for every preset.
    #[test]
    fn trials_reproduce_per_seed(seed in 0u64..1000, trial in 0usize..50) {
        for preset in RadioScenario::preset_names() {
            let scenario = RadioScenario::preset(preset, 256)
                .expect("built-in preset")
                .with_seed(seed);
            let a = scenario.observe(Hypothesis::Occupied, trial).unwrap();
            let b = scenario.observe(Hypothesis::Occupied, trial).unwrap();
            prop_assert_eq!(&a.samples, &b.samples, "preset {}", preset);
            let next_trial = scenario.observe(Hypothesis::Occupied, trial + 1).unwrap();
            prop_assert_ne!(&a.samples, &next_trial.samples, "preset {}", preset);
            let other_seed = scenario
                .with_seed(seed ^ 0xDEAD_BEEF)
                .observe(Hypothesis::Occupied, trial)
                .unwrap();
            prop_assert_ne!(&a.samples, &other_seed.samples, "preset {}", preset);
        }
    }

    /// Because SNR sweeps reuse the same noise realisations per trial
    /// (common random numbers), the energy detector's detection
    /// probability is monotone non-decreasing in SNR, up to one trial of
    /// slack: per trial the statistic is `g²·Σ|s|² + 2g·Re⟨s,w⟩ + Σ|w|²`,
    /// and a negative signal–noise cross term can make a single trial
    /// detect at a lower SNR but not a higher one.
    #[test]
    fn energy_detector_pd_is_monotone_in_snr(seed in 0u64..1000) {
        let len = 1024usize;
        let scenario = RadioScenario::preset("bpsk-awgn", len)
            .expect("built-in preset")
            .with_seed(seed);
        let table = SweepBuilder::new(&scenario)
            .sweep(SnrSweep::linspace(-18.0, 6.0, 5, 30).unwrap())
            .backend(EnergyDetector::new(1.0, 0.05, len).unwrap())
            .run()
            .unwrap();
        let series = table.pd_series("energy");
        prop_assert_eq!(series.len(), 5);
        // Two trials of slack out of 30: each trial's negative cross term
        // can independently flip one adjacent-SNR comparison.
        let slack = 2.0 / 30.0 + 1e-12;
        for window in series.windows(2) {
            prop_assert!(
                window[1].1 >= window[0].1 - slack,
                "Pd dropped from {} (at {} dB) to {} (at {} dB)",
                window[0].1,
                window[0].0,
                window[1].1,
                window[1].0
            );
        }
        // The sweep spans chance to certainty.
        prop_assert!(series[4].1 > 0.9, "Pd at 6 dB = {}", series[4].1);
    }

    /// Determinism under common random numbers survives the thread pool:
    /// for every preset, any worker count and any base seed, the parallel
    /// sweep produces a `RocTable` identical to the serial reference —
    /// same rows, same Pd/Pfa, bit for bit.
    #[test]
    fn parallel_sweep_equals_serial_for_every_preset(
        seed in 0u64..1000,
        workers in 2usize..6,
    ) {
        let params = ScfParams::new(32, 7, 8).unwrap();
        let len = params.samples_needed();
        let sweep = SnrSweep::new(vec![-5.0, 5.0], 6).unwrap();
        for preset in RadioScenario::preset_names() {
            let scenario = RadioScenario::preset(preset, len)
                .expect("built-in preset")
                .with_seed(seed);
            let run = |workers: usize| {
                SweepBuilder::new(&scenario)
                    .sweep(sweep.clone())
                    .backend(EnergyDetector::new(1.0, 0.1, len).unwrap())
                    .backend(CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap())
                    .workers(workers)
                    .run()
                    .unwrap()
            };
            prop_assert_eq!(
                &run(1),
                &run(workers),
                "preset {} diverged with {} workers",
                preset,
                workers
            );
        }
    }
}
