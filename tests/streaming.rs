//! Pins the incremental sliding-window DSCF (PR 8) against the batch
//! engine:
//!
//! * **per-hop parity** — over random `fft_len × max_offset × window ×
//!   hop × refresh-interval` geometries (including `hop == block`,
//!   `hop < block` overlap and the `window == 1` edge), every matrix a
//!   [`StreamingSensor`] installs is within 1e-12 of the batch
//!   [`ScfEngine`] over exactly the same window of samples, and
//!   **bitwise** equal on exact-refresh hops (`hop index % R == 0`) —
//!   in both retire modes (cached contribution planes and
//!   recompute-and-subtract);
//! * **decision identity** — a [`CyclostationaryDetector`] driven through
//!   `StreamingSensor` produces the same statistic as the same detector
//!   deciding batchwise on the same windows (bit-identical at refresh
//!   hops), and an [`EnergyDetector`] — which never looks at the DSCF —
//!   decides bit-identically at every hop;
//! * **adaptive materialisation** — the sensor finalises the full matrix
//!   only for backends that actually read it; profile-deciding backends
//!   drop to the O(grid/2) fast path after the first decision.

use cfd_core::backend::{Decision, Observation, SensingBackend};
use cfd_core::error::CfdError;
use cfd_core::stream::{StreamingConfig, StreamingSensor};
use cfd_dsp::complex::Cplx;
use cfd_dsp::detector::{CyclostationaryDetector, EnergyDetector};
use cfd_dsp::scf::{ScfEngine, ScfMatrix, ScfParams};
use cfd_dsp::signal::awgn;
use proptest::prelude::*;

/// A backend that captures each hop's window samples and installed DSCF,
/// so the streamed matrices can be checked against batch recomputation.
struct MatrixProbe {
    engine: ScfEngine,
    captured: Vec<(Vec<Cplx>, ScfMatrix)>,
}

impl MatrixProbe {
    fn new(params: ScfParams) -> Self {
        MatrixProbe {
            engine: ScfEngine::new(params).unwrap(),
            captured: Vec::new(),
        }
    }
}

impl SensingBackend for MatrixProbe {
    fn label(&self) -> String {
        "matrix-probe".into()
    }

    fn decide(&mut self, observation: &mut Observation) -> Result<Decision, CfdError> {
        let samples = observation.samples().to_vec();
        let scf = observation.scf_for(&self.engine)?.clone();
        self.captured.push((samples, scf));
        Ok(Decision::new(0.0, 1.0))
    }
}

/// Builds a probing sensor, streams `signal` through it and returns the
/// per-hop captures.
fn stream_captures(
    params: &ScfParams,
    refresh: usize,
    plane_budget: usize,
    signal: &[Cplx],
) -> Vec<(Vec<Cplx>, ScfMatrix)> {
    let config = StreamingConfig::new(params.clone())
        .with_refresh_interval(refresh)
        .with_plane_budget(plane_budget);
    let mut sensor = StreamingSensor::new(config, MatrixProbe::new(params.clone())).unwrap();
    assert_eq!(sensor.caches_planes(), plane_budget > 0);
    sensor.push(signal).unwrap();
    let hops = sensor.decisions_emitted();
    assert_eq!(
        sensor.incremental_hops() + sensor.exact_refreshes(),
        hops,
        "every decision is either incremental or an exact refresh"
    );
    let expected_refreshes = (0..hops).filter(|d| d % refresh as u64 == 0).count() as u64;
    assert_eq!(sensor.exact_refreshes(), expected_refreshes);
    let captured = std::mem::take(&mut sensor.backend_mut().captured);
    assert_eq!(captured.len() as u64, hops);
    captured
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every streamed matrix vs the batch engine over the same window:
    /// ≤ 1e-12 on rolling hops, bitwise on exact-refresh hops, in both
    /// retire modes.
    #[test]
    fn streaming_matches_batch_at_every_hop(
        seed in 0u64..1000,
        fft_pow in 4u32..7,
        offset_raw in 1usize..1000,
        window in 1usize..10,
        hop_raw in 1usize..1000,
        refresh in 1usize..9,
    ) {
        let fft_len = 1usize << fft_pow;
        let max_offset = 1 + offset_raw % (fft_len / 2 - 1);
        let hop = 1 + hop_raw % fft_len; // covers hop < block and hop == block
        let params = ScfParams::new(fft_len, max_offset, window)
            .unwrap()
            .with_stride(hop);
        // Enough stream for two full refresh cycles plus change.
        let decisions = 2 * refresh + 3;
        let blocks = window + decisions - 1;
        let signal = awgn((blocks - 1) * hop + fft_len, 1.0, seed);
        let engine = ScfEngine::new(params.clone()).unwrap();
        let mut batch = ScfMatrix::zeros(max_offset);

        // Cached-plane retire vs recompute-and-subtract retire: same
        // stream, both checked against batch, hop for hop.
        let with_planes = stream_captures(&params, refresh, usize::MAX, &signal);
        let without_planes = stream_captures(&params, refresh, 0, &signal);
        prop_assert_eq!(with_planes.len(), decisions);
        prop_assert_eq!(without_planes.len(), decisions);

        for (mode, captures) in [("planes", &with_planes), ("recompute", &without_planes)] {
            for (d, (samples, streamed)) in captures.iter().enumerate() {
                // The installed window is exactly the d-th hop's samples.
                let expected = &signal[d * hop..d * hop + params.samples_needed()];
                prop_assert_eq!(samples.as_slice(), expected);
                engine.compute_into(expected, &mut batch).unwrap();
                if d % refresh == 0 {
                    prop_assert_eq!(
                        streamed.as_slice(), batch.as_slice(),
                        "{} mode, refresh hop {} must be bitwise", mode, d
                    );
                } else {
                    let drift = streamed.max_abs_difference(&batch);
                    prop_assert!(
                        drift <= 1e-12,
                        "{mode} mode, hop {d}: drift {drift:e} exceeds 1e-12"
                    );
                }
            }
        }
    }

    /// A CFD backend streamed hop-by-hop decides like the same backend
    /// deciding batchwise on each window: bit-identical statistic at
    /// refresh hops, ≤ 1e-9 in between, and the verdict agrees whenever
    /// the statistic is not within drift of the threshold.
    #[test]
    fn streaming_decisions_match_the_batch_detector(
        seed in 0u64..1000,
        fft_pow in 4u32..7,
        offset_raw in 1usize..1000,
        window in 2usize..9,
        hop_raw in 1usize..1000,
        refresh in 1usize..7,
    ) {
        let fft_len = 1usize << fft_pow;
        let max_offset = 2 + offset_raw % (fft_len / 2 - 2);
        let hop = 1 + hop_raw % fft_len;
        let params = ScfParams::new(fft_len, max_offset, window)
            .unwrap()
            .with_stride(hop);
        let threshold = 0.35;
        let decisions = 2 * refresh + 2;
        let blocks = window + decisions - 1;
        let signal = awgn((blocks - 1) * hop + fft_len, 1.0, seed);

        let config = StreamingConfig::new(params.clone()).with_refresh_interval(refresh);
        let cfd = CyclostationaryDetector::new(params.clone(), threshold, 1).unwrap();
        let mut sensor = StreamingSensor::new(config, cfd).unwrap();
        let streamed = sensor.push(&signal).unwrap();
        prop_assert_eq!(streamed.len(), decisions);

        let mut batch_backend = CyclostationaryDetector::new(params.clone(), threshold, 1).unwrap();
        let mut observation = Observation::new();
        for (d, decision) in streamed.iter().enumerate() {
            let win = &signal[d * hop..d * hop + params.samples_needed()];
            observation.load(win);
            let batch = batch_backend.decide(&mut observation).unwrap();
            prop_assert_eq!(decision.threshold, batch.threshold);
            if d % refresh == 0 {
                prop_assert_eq!(
                    decision.statistic.to_bits(), batch.statistic.to_bits(),
                    "refresh hop {} statistic must be bit-identical", d
                );
                prop_assert_eq!(decision.verdict, batch.verdict);
            } else {
                let drift = (decision.statistic - batch.statistic).abs();
                prop_assert!(drift <= 1e-9, "hop {d}: statistic drift {drift:e}");
                if (batch.statistic - threshold).abs() > 1e-6 {
                    prop_assert_eq!(decision.verdict, batch.verdict);
                }
            }
        }
    }
}

/// The sensor materialises the full matrix only while its backend reads
/// it: a matrix-probing backend keeps the flag on, the stock CFD detector
/// (deciding from the installed profile) drops it after the first
/// decision, and a reset restores the conservative default.
#[test]
fn matrix_materialization_adapts_to_the_backend() {
    let params = ScfParams::new(32, 7, 4).unwrap();
    // 6 blocks at the back-to-back stride -> 3 decisions.
    let signal = awgn(6 * 32, 1.0, 5);
    let config = StreamingConfig::new(params.clone()).with_refresh_interval(usize::MAX);

    let mut probing =
        StreamingSensor::new(config.clone(), MatrixProbe::new(params.clone())).unwrap();
    assert!(probing.materializes_matrix());
    probing.push(&signal).unwrap();
    assert_eq!(probing.decisions_emitted(), 3);
    assert!(
        probing.materializes_matrix(),
        "a matrix-reading backend keeps materialisation on"
    );

    let cfd = CyclostationaryDetector::new(params.clone(), 0.35, 1).unwrap();
    let mut sensor = StreamingSensor::new(config, cfd).unwrap();
    assert!(sensor.materializes_matrix());
    sensor.push(&signal).unwrap();
    assert_eq!(sensor.decisions_emitted(), 3);
    assert!(
        !sensor.materializes_matrix(),
        "a profile-deciding backend drops to the fast path"
    );
    sensor.reset();
    assert!(sensor.materializes_matrix());
}

/// An energy detector never reads the DSCF — through the streaming
/// surface it must decide bit-identically to batch at every hop, refresh
/// or not (the installed window samples are verbatim).
#[test]
fn energy_decisions_are_identical_through_the_stream() {
    let params = ScfParams::new(32, 7, 8).unwrap().with_stride(24);
    let len = params.samples_needed();
    // 12 blocks at stride 24 with window 8 -> 5 decisions.
    let signal = awgn(11 * 24 + 32, 1.0, 17);
    let energy = EnergyDetector::new(1.0, 0.1, len).unwrap();
    let config = StreamingConfig::new(params.clone()).with_refresh_interval(4);
    let mut sensor = StreamingSensor::new(config, energy.clone()).unwrap();
    let streamed = sensor.push(&signal).unwrap();
    assert_eq!(streamed.len(), 5);

    let mut batch_backend = energy;
    let mut observation = Observation::new();
    for (d, decision) in streamed.iter().enumerate() {
        observation.load(&signal[d * 24..d * 24 + len]);
        let batch = batch_backend.decide(&mut observation).unwrap();
        assert_eq!(decision, &batch, "hop {d}");
    }
}
