//! Property-based tests over the core invariants of the reproduction,
//! spanning all crates.

use cfd_dsp::complex::Cplx;
use cfd_dsp::fft::{dft_naive, fft, ifft, FftPlan};
use cfd_dsp::fixed::Q15;
use cfd_dsp::scf::{block_spectra, dscf_reference, ScfEngine, ScfMatrix, ScfParams};
use cfd_dsp::signal::awgn;
use cfd_dsp::window::Window;
use cfd_mapping::folding::{FoldedArray, Folding};
use cfd_mapping::systolic::SystolicArray;
use proptest::prelude::*;

fn arbitrary_signal(len: usize) -> impl Strategy<Value = Vec<Cplx>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(re, im)| Cplx::new(re, im))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The FFT inverts exactly (up to numerical noise) for any signal.
    #[test]
    fn fft_ifft_round_trip(signal in arbitrary_signal(64)) {
        let spectrum = fft(&signal).unwrap();
        let back = ifft(&spectrum).unwrap();
        for (a, b) in signal.iter().zip(back.iter()) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    /// The FFT agrees with the naive DFT for any signal.
    #[test]
    fn fft_matches_dft(signal in arbitrary_signal(32)) {
        let fast = fft(&signal).unwrap();
        let slow = dft_naive(&signal);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval's theorem holds for any signal.
    #[test]
    fn fft_preserves_energy(signal in arbitrary_signal(128)) {
        let time_energy: f64 = signal.iter().map(|x| x.norm_sqr()).sum();
        let spectrum = fft(&signal).unwrap();
        let freq_energy: f64 = spectrum.iter().map(|x| x.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-8 * time_energy.max(1.0));
    }

    /// Q15 quantisation never leaves the representable range and never errs
    /// by more than one LSB for in-range values.
    #[test]
    fn q15_is_bounded_and_accurate(value in -2.0f64..2.0) {
        let q = Q15::from_f64(value);
        let back = q.to_f64();
        prop_assert!((-1.0..1.0).contains(&back));
        if (-1.0..=0.99996).contains(&value) {
            prop_assert!((back - value).abs() <= 1.0 / 32768.0);
        }
    }

    /// Q15 saturating arithmetic stays within range for any operands.
    #[test]
    fn q15_arithmetic_is_closed(a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let qa = Q15::from_f64(a);
        let qb = Q15::from_f64(b);
        for result in [qa.saturating_add(qb), qa.saturating_sub(qb), qa.saturating_mul(qb), qa.saturating_neg()] {
            prop_assert!((-1.0..1.0).contains(&result.to_f64()));
        }
    }

    /// A prepared `FftPlan` computes exactly the same transform as the
    /// planless wrapper for any signal (both route through the same cached
    /// plan machinery; this pins the equivalence at the API level).
    #[test]
    fn fft_plan_matches_planless_wrapper(signal in arbitrary_signal(64)) {
        let plan = FftPlan::new(64).unwrap();
        let mut planned = signal.clone();
        plan.forward_in_place(&mut planned).unwrap();
        let wrapper = fft(&signal).unwrap();
        prop_assert_eq!(&planned, &wrapper);
        plan.inverse_in_place(&mut planned).unwrap();
        for (a, b) in planned.iter().zip(signal.iter()) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    /// The table-driven, symmetry-halved `ScfEngine` matches the eq.-3
    /// golden model within 1e-12 (in practice bit-for-bit) across random
    /// FFT lengths, grid half-widths, integration lengths, block strides
    /// (overlapping and non-overlapping) and analysis windows — including
    /// when re-integrating into a reused, wrongly-sized matrix.
    #[test]
    fn scf_engine_matches_the_reference_everywhere(
        seed in 0u64..1000,
        fft_pow in 4u32..7,
        offset_raw in 0usize..1000,
        blocks in 1usize..5,
        stride_raw in 0usize..1000,
        window_raw in 0usize..4,
    ) {
        let fft_len = 1usize << fft_pow;
        let max_offset = 1 + offset_raw % (fft_len / 2 - 1);
        let stride = 1 + stride_raw % fft_len;
        let params = ScfParams::new(fft_len, max_offset, blocks)
            .unwrap()
            .with_stride(stride)
            .with_window(Window::ALL[window_raw]);
        let signal = awgn(params.samples_needed(), 1.0, seed);
        let reference = dscf_reference(&signal, &params).unwrap();
        let engine = ScfEngine::new(params).unwrap();
        let fast = engine.compute(&signal).unwrap();
        prop_assert!(fast.max_abs_difference(&reference) <= 1e-12);
        // In-place re-integration into a dirty, wrong-sized matrix.
        let mut reused = ScfMatrix::zeros(2);
        reused.set(0, 0, Cplx::new(9.0, 9.0));
        engine.compute_into(&signal, &mut reused).unwrap();
        prop_assert!(reused.max_abs_difference(&reference) <= 1e-12);
    }

    /// The DSCF has conjugate symmetry in the offset: S_f^{-a} = conj(S_f^a).
    #[test]
    fn dscf_conjugate_symmetry(seed in 0u64..1000) {
        let params = ScfParams::new(16, 3, 2).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, seed);
        let scf = dscf_reference(&signal, &params).unwrap();
        for f in -3..=3 {
            for a in -3..=3 {
                let lhs = scf.at(f, -a);
                let rhs = scf.at(f, a).conj();
                prop_assert!((lhs - rhs).abs() < 1e-9);
            }
        }
    }

    /// Eq. 8/9 folding is a partition of the initial task set for any (P, Q).
    #[test]
    fn folding_is_always_a_partition(p in 1usize..300, q in 1usize..20) {
        let folding = Folding::new(p, q).unwrap();
        prop_assert!(folding.is_partition());
        prop_assert_eq!(folding.tasks_per_core, p.div_ceil(q));
        let total: usize = (0..q).map(|c| folding.load_of_core(c)).sum();
        prop_assert_eq!(total, p);
        for task in 0..p {
            prop_assert!(folding.core_of_task(task) < q);
        }
    }

    /// The systolic array and the folded array compute exactly the reference
    /// DSCF for arbitrary signals, grid sizes and core counts.
    #[test]
    fn mapped_architectures_match_reference(
        seed in 0u64..1000,
        max_offset in 1usize..6,
        cores in 1usize..5,
        blocks in 1usize..4,
    ) {
        let params = ScfParams::new(16, max_offset, blocks).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, seed);
        let reference = dscf_reference(&signal, &params).unwrap();
        let spectra = block_spectra(&signal, &params).unwrap();

        let mut systolic = SystolicArray::new(max_offset, 16);
        let (systolic_result, _) = systolic.run(&spectra);
        prop_assert!(systolic_result.max_abs_difference(&reference) < 1e-9);

        let mut folded = FoldedArray::new(max_offset, 16, cores).unwrap();
        let (folded_result, _) = folded.run(&spectra);
        prop_assert!(folded_result.max_abs_difference(&reference) < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full tiled-SoC simulation matches the reference DSCF for random
    /// signals and platform sizes (kept at 8 cases: each runs a whole
    /// platform).
    #[test]
    fn tiled_soc_matches_reference(seed in 0u64..100, tiles in 1usize..5) {
        use tiled_soc::config::SocConfig;
        use tiled_soc::soc::TiledSoc;
        let params = ScfParams::new(16, 3, 2).unwrap();
        let signal = awgn(params.samples_needed(), 1.0, seed);
        let reference = dscf_reference(&signal, &params).unwrap();
        let mut soc = TiledSoc::new(SocConfig::paper().with_tiles(tiles), 3, 16).unwrap();
        let run = soc.run(&signal, 2).unwrap();
        prop_assert!(run.scf.max_abs_difference(&reference) < 1e-9);
    }
}
