//! Pins the tiled SoC's analytic fast path against the cycle-accurate
//! lockstep simulation: over random platform/application geometries the
//! DSCF must match to ≤ 1e-12 (in practice it is exact — same FFT plan,
//! same accumulation expression, same normalisation) and every platform
//! counter — per-tile cycle breakdowns phase by phase, inter-tile
//! transfers, source inputs — must be *equal*, because the analytic cycle
//! model is the closed form of what the sequencer and links count.
//!
//! A sweep-level test additionally pins decision-identity of a
//! `SpectrumSensor` roster between `ExecutionMode::Analytic` (the sweep
//! default, fed by shared software spectra) and `ExecutionMode::Lockstep`
//! (the golden reference simulating its own on-tile FFTs).

use cfd_core::app::{CfdApplication, Platform};
use cfd_dsp::complex::Cplx;
use cfd_dsp::scf::{ScfEngine, ScfParams};
use cfd_dsp::signal::{modulated_signal, ModulatedSignalSpec};
use cfd_scenario::prelude::*;
use proptest::prelude::*;
use tiled_soc::config::{ExecutionMode, SocConfig};
use tiled_soc::soc::TiledSoc;

fn soc(mode: ExecutionMode, tiles: usize, max_offset: usize, fft_len: usize) -> TiledSoc {
    let config = SocConfig::paper().with_tiles(tiles).with_mode(mode);
    TiledSoc::new(config, max_offset, fft_len).unwrap()
}

fn signal_for(fft_len: usize, blocks: usize, seed: u64) -> Vec<Cplx> {
    let spec = ModulatedSignalSpec {
        samples_per_symbol: 4,
        ..Default::default()
    };
    modulated_signal(fft_len * blocks, &spec, seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast path vs lockstep simulator over random configurations:
    /// bit-identical DSCF, equal counters.
    #[test]
    fn analytic_matches_lockstep_over_random_configurations(
        seed in 0u64..1000,
        tiles in 1usize..6,
        fft_pow in 4u32..7,
        offset_raw in 1usize..1000,
        blocks in 1usize..5,
    ) {
        let fft_len = 1usize << fft_pow;
        let max_offset = 1 + offset_raw % (fft_len / 2 - 1);
        let signal = signal_for(fft_len, blocks, seed);
        let mut lockstep = soc(ExecutionMode::Lockstep, tiles, max_offset, fft_len);
        let mut analytic = soc(ExecutionMode::Analytic, tiles, max_offset, fft_len);
        let golden = lockstep.run(&signal, blocks).unwrap();
        let fast = analytic.run(&signal, blocks).unwrap();
        // The issue bound is ≤ 1e-12; the construction makes it exact.
        prop_assert!(fast.scf.max_abs_difference(&golden.scf) <= 1e-12);
        prop_assert_eq!(fast.scf.max_abs_difference(&golden.scf), 0.0);
        prop_assert_eq!(&fast.per_tile_cycles, &golden.per_tile_cycles);
        prop_assert_eq!(fast.inter_tile_transfers, golden.inter_tile_transfers);
        prop_assert_eq!(fast.source_inputs, golden.source_inputs);
        prop_assert_eq!(fast.blocks, golden.blocks);
        prop_assert_eq!(fast.max_tile_cycles(), golden.max_tile_cycles());
    }

    /// The spectra-fed entry point (`run_from_spectra`, driven here the way
    /// the sweep engine drives it: engine-computed shared spectra) produces
    /// the same run as the simulator on the raw samples.
    #[test]
    fn spectra_fed_runs_match_the_simulator(
        seed in 0u64..1000,
        tiles in 1usize..5,
        blocks in 1usize..4,
    ) {
        let (fft_len, max_offset) = (32usize, 7usize);
        let signal = signal_for(fft_len, blocks, seed);
        let engine = ScfEngine::new(ScfParams::new(fft_len, max_offset, blocks).unwrap()).unwrap();
        let spectra = engine.compute_spectra(&signal).unwrap();
        let mut lockstep = soc(ExecutionMode::Lockstep, tiles, max_offset, fft_len);
        let mut fed = soc(ExecutionMode::Analytic, tiles, max_offset, fft_len);
        let golden = lockstep.run(&signal, blocks).unwrap();
        let fast = fed.run_from_spectra(&spectra).unwrap();
        prop_assert_eq!(fast.scf.max_abs_difference(&golden.scf), 0.0);
        prop_assert_eq!(&fast.per_tile_cycles, &golden.per_tile_cycles);
        prop_assert_eq!(fast.inter_tile_transfers, golden.inter_tile_transfers);
        prop_assert_eq!(fast.source_inputs, golden.source_inputs);
    }
}

/// A platform-session roster swept under `Analytic` (shared-spectra fast
/// path) decides identically to the same roster under `Lockstep` (the
/// cycle-accurate golden reference), row for row.
#[test]
fn sweep_decisions_are_identical_across_analytic_and_lockstep() {
    let application = CfdApplication::new(32, 7, 16).unwrap();
    let scenario = RadioScenario::preset("bpsk-awgn", application.samples_needed())
        .expect("built-in preset")
        .with_seed(7);
    let sweep = SnrSweep::new(vec![-5.0, 5.0], 6).unwrap();
    let run = |mode: ExecutionMode, workers: usize| {
        SweepBuilder::new(&scenario)
            .sweep(sweep.clone())
            .backend(SessionRecipe::new(
                application.clone(),
                &Platform::paper().with_mode(mode),
                0.35,
                1,
            ))
            .workers(workers)
            .run()
            .unwrap()
    };
    let workers = 3;
    let fast = run(ExecutionMode::Analytic, workers);
    let golden = run(ExecutionMode::Lockstep, workers);
    assert_eq!(fast, golden);
    // The serial path agrees too (the sharing happens per worker).
    let serial = run(ExecutionMode::Analytic, 1);
    assert_eq!(serial, golden);
}
