//! Pins the sweep engine's shared-spectra contract: block spectra are
//! computed **once per trial**, not once per backend replica, on both the
//! serial and the parallel execution path of the `SensingBackend` surface.
//!
//! This lives in its own integration-test binary on purpose — the
//! `core.observation.spectra_computations` registry counter is
//! process-global, so the delta measurements must not race other sweeps
//! running in the same process.
//! For the same reason everything here is **one** `#[test]`: libtest runs
//! tests of a binary in parallel, and two tests measuring exact deltas of
//! the same global counter would race each other.

use cfd_core::app::{CfdApplication, Platform};
use cfd_dsp::detector::{CyclostationaryDetector, EnergyDetector};
use cfd_dsp::scf::ScfParams;
use cfd_scenario::prelude::*;

fn params() -> ScfParams {
    ScfParams::new(32, 7, 16).unwrap()
}

/// The registry counter behind the once-per-trial contract (the former
/// `spectra_computations()` / `shared_spectra_computations()` shims are
/// gone; the counter is the single source of truth).
fn spectra_computations() -> u64 {
    cfd_telemetry::counter("core.observation.spectra_computations").value()
}

#[test]
fn spectra_are_computed_once_per_trial_on_serial_and_parallel_paths() {
    let len = params().samples_needed();
    let scenario = RadioScenario::preset("bpsk-awgn", len)
        .expect("built-in preset")
        .with_seed(11);
    let points = 2usize;
    let trials = 5usize;
    let sweep = SnrSweep::new(vec![-5.0, 5.0], trials).unwrap();
    // One shared H0 pass plus one H1 pass per SNR point.
    let observations = (points + 1) * trials;

    // Two CFD detectors at the same ScfParams, a tiled-SoC session at the
    // equivalent application (its analytic platform consumes the shared
    // spectra through the spectra-fed correlator), plus the energy
    // baseline: one FFT per trial for the whole roster — before the
    // shared-spectra path every CFD replica re-ran windowing + FFT per
    // observation, and before the SoC fast path every SoC replica
    // additionally simulated an on-tile FFT per tile.
    let builder_with = |workers: usize| {
        SweepBuilder::new(&scenario)
            .sweep(sweep.clone())
            .backend(EnergyDetector::new(1.0, 0.1, len).unwrap())
            .backend(CyclostationaryDetector::new(params(), 0.25, 1).unwrap())
            .backend(CyclostationaryDetector::new(params(), 0.45, 1).unwrap())
            .backend(SessionRecipe::new(
                CfdApplication::new(32, 7, 16).unwrap(),
                &Platform::paper(),
                0.35,
                1,
            ))
            .workers(workers)
            .run()
            .unwrap()
    };

    // --- The open SweepBuilder engine ----------------------------------
    let before = spectra_computations();
    let serial = builder_with(1);
    let after_serial = spectra_computations();
    assert_eq!(
        (after_serial - before) as usize,
        observations,
        "serial sweep must compute spectra once per observation"
    );

    let parallel = builder_with(3);
    let after_parallel = spectra_computations();
    assert_eq!(
        (after_parallel - after_serial) as usize,
        observations,
        "parallel sweep must compute spectra once per observation"
    );
    assert_eq!(serial, parallel);
}
