//! Pins the sweep engine's shared-spectra contract: block spectra are
//! computed **once per trial**, not once per detector replica, on both the
//! serial and the parallel execution path.
//!
//! This lives in its own integration-test binary on purpose — the
//! [`shared_spectra_computations`] counter is process-global, so the delta
//! measurement must not race other sweeps running in the same process.

use cfd_core::app::{CfdApplication, Platform};
use cfd_dsp::detector::{CyclostationaryDetector, EnergyDetector};
use cfd_dsp::scf::ScfParams;
use cfd_scenario::prelude::*;

#[test]
fn evaluate_sweep_computes_block_spectra_once_per_trial() {
    let params = ScfParams::new(32, 7, 16).unwrap();
    let len = params.samples_needed();
    let scenario = RadioScenario::preset("bpsk-awgn", len)
        .expect("built-in preset")
        .with_seed(11);
    let points = 2usize;
    let trials = 5usize;
    let sweep = SnrSweep::new(vec![-5.0, 5.0], trials).unwrap();
    // Two CFD detectors at the same ScfParams, a tiled-SoC sensor at the
    // equivalent application (its analytic platform consumes the shared
    // spectra through the spectra-fed correlator), plus the energy
    // baseline: one FFT per trial for the whole roster — before the
    // shared-spectra path every CFD replica re-ran windowing + FFT per
    // observation, and before the SoC fast path every SoC replica
    // additionally simulated an on-tile FFT per tile.
    let detectors = vec![
        SweepDetectorFactory::Energy(EnergyDetector::new(1.0, 0.1, len).unwrap()),
        SweepDetectorFactory::Cyclostationary(
            CyclostationaryDetector::new(params.clone(), 0.25, 1).unwrap(),
        ),
        SweepDetectorFactory::Cyclostationary(
            CyclostationaryDetector::new(params, 0.45, 1).unwrap(),
        ),
        SweepDetectorFactory::tiled_soc(
            CfdApplication::new(32, 7, 16).unwrap(),
            &Platform::paper(),
            0.35,
            1,
        ),
    ];
    // One shared H0 pass plus one H1 pass per SNR point.
    let observations = ((points + 1) * trials) as u64;

    let before = shared_spectra_computations();
    let serial = evaluate_sweep_serial(&scenario, &sweep, &detectors).unwrap();
    let after_serial = shared_spectra_computations();
    assert_eq!(
        after_serial - before,
        observations,
        "serial sweep must compute spectra once per observation"
    );

    let parallel = evaluate_sweep_with_workers(&scenario, &sweep, &detectors, 3).unwrap();
    let after_parallel = shared_spectra_computations();
    assert_eq!(
        after_parallel - after_serial,
        observations,
        "parallel sweep must compute spectra once per observation"
    );
    assert_eq!(serial, parallel);
}
