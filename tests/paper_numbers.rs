//! Integration tests pinning every number the paper reports to the
//! reproduction: the Section 2 cost comparison, the Section 3 folding, the
//! Section 4.1 memory sizing and Table 1, and the Section 5 evaluation.

use cfd_core::prelude::*;
use cfd_dsp::fft::{
    dscf_complex_multiplications, dscf_to_fft_cost_ratio, fft_complex_multiplications,
};
use cfd_dsp::signal::awgn;
use cfd_mapping::folding::Folding;
use cfd_mapping::memory::{MemoryRequirement, ShiftRegisterRequirement};
use montium_sim::kernels::{configure_tile, run_integration_step, TileTaskSet};
use montium_sim::MontiumCore;
use tiled_soc::soc::TiledSoc;

#[test]
fn section2_cost_comparison() {
    // "calculating the DSCF for a 256 point spectrum involves 16 times as
    // many complex multiplications than the determination of the spectrum".
    assert_eq!(fft_complex_multiplications(256), 1024);
    assert_eq!(dscf_complex_multiplications(256), 16384);
    assert!((dscf_to_fft_cost_ratio(256) - 16.0).abs() < 1e-12);
}

#[test]
fn section3_folding_onto_four_montiums() {
    // "127 complex multipliers are needed" and, with Q = 4, "the number of
    // tasks to be executed by one Montium core is therefore smaller than or
    // equal to 32".
    let folding = Folding::paper();
    assert_eq!(folding.initial_processors, 127);
    assert_eq!(folding.tasks_per_core, 32);
    assert!(folding.is_partition());
    for q in 0..4 {
        assert!(folding.load_of_core(q) <= 32);
    }
}

#[test]
fn section41_memory_sizing() {
    // "T*F = 32*127 < 4K complex values or less than 8K real values. The
    // total memory capacity of the Montium memories M01 to M08 equals 8K
    // words of 16 bits." and "Each memory [M09/M10] contains 32 complex
    // values."
    let memory = MemoryRequirement::paper();
    assert_eq!(memory.complex_values(), 4064);
    assert!(memory.complex_values() < 4096);
    assert!(memory.real_words() < 8192);
    memory.check_fits(8192).unwrap();
    assert!((memory.dynamic_range_db() - 96.0).abs() < 1.0);
    let shift = ShiftRegisterRequirement::new(&Folding::paper());
    assert_eq!(shift.complex_values_per_flow(), 32);
}

#[test]
fn table1_from_the_cycle_level_tile_simulation() {
    // The cycle-level tile simulation reproduces every row of Table 1.
    let mut tile = MontiumCore::paper();
    let task_set = TileTaskSet::paper(0).unwrap();
    configure_tile(&mut tile, &task_set).unwrap();
    let run = run_integration_step(&mut tile, &task_set, &awgn(256, 1.0, 1)).unwrap();
    let table = Table1Report::from_cycles(&run.cycles);
    let paper = Table1Report::paper_reference();
    assert!(
        table.matches(&paper),
        "\nsimulated:\n{}\npaper:\n{}",
        table.render(),
        paper.render()
    );
}

#[test]
fn table1_from_the_analytic_two_step_methodology() {
    let report = TwoStepMapping::analyse(&CfdApplication::paper(), &Platform::paper()).unwrap();
    let table = Table1Report::from_cycles(&report.step2.cycles);
    assert!(table.matches(&Table1Report::paper_reference()));
}

#[test]
fn section5_evaluation_numbers() {
    // "a spectrum (256 points) and a DSCF (127 x 127 points) can be
    // determined within approximately 140 us", "an analysed bandwidth of
    // approximately 915 kHz", "approximately 8 mm2", "200 mW".
    let report = TwoStepMapping::analyse(&CfdApplication::paper(), &Platform::paper()).unwrap();
    assert!((report.step2.time_per_block_us - 139.96).abs() < 1e-9);
    assert!((report.metrics.analysed_bandwidth_khz - 915.0).abs() < 1.0);
    assert!((report.metrics.area_mm2 - 8.0).abs() < 1e-12);
    assert!((report.metrics.power_mw - 200.0).abs() < 1e-9);
}

#[test]
fn section5_numbers_also_hold_for_the_full_platform_simulation() {
    // The same figures measured on the executing 4-tile platform rather
    // than the analytic model.
    let mut soc = TiledSoc::paper().unwrap();
    let run = soc.run(&awgn(256, 1.0, 2), 1).unwrap();
    assert_eq!(run.max_tile_cycles(), 13_996);
    let metrics = soc.metrics(&run);
    assert!((metrics.time_per_block_us - 139.96).abs() < 1e-9);
    assert!((metrics.analysed_bandwidth_khz - 915.0).abs() < 1.0);
    assert!((metrics.area_mm2 - 8.0).abs() < 1e-12);
    assert!((metrics.power_mw - 200.0).abs() < 1e-9);
}

#[test]
fn section5_linear_scaling_claim() {
    // "The analysed bandwidth, chip area and power consumption scale
    // linearly with the number of Montium processors."
    let study = EvaluationReport::scaling_study(&CfdApplication::paper(), &[4, 8, 16]).unwrap();
    let base = &study.rows[0];
    for row in &study.rows[1..] {
        let factor = row.cores as f64 / base.cores as f64;
        // Area and power scale exactly linearly.
        assert!((row.area_mm2 - base.area_mm2 * factor).abs() < 1e-9);
        assert!((row.power_mw - base.power_mw * factor).abs() < 1e-9);
        // Bandwidth scales linearly in the MAC-dominated part; the fixed
        // FFT/reshuffle overhead makes it slightly sub-linear overall.
        let ratio = row.analysed_bandwidth_khz / base.analysed_bandwidth_khz;
        assert!(
            ratio > 0.6 * factor && ratio <= factor,
            "ratio {ratio} vs factor {factor}"
        );
    }
}
