//! Pins the telemetry cost model and the sweep engine's metric contract:
//!
//! * **no-op mode** — with timing disabled (the default), running a full
//!   sweep records *nothing* into any latency histogram, while throughput
//!   counters still advance (counters are always-live so cache-contract
//!   tests like `shared_spectra.rs` work without enabling telemetry);
//! * **enabled mode** — with timing enabled, one sweep over the SoC-backed
//!   roster fills every per-stage histogram of the pipeline (FFT, DSCF
//!   spectra + accumulate, SoC correlate, decide, sweep cells);
//! * **snapshot determinism** — the throughput counters advance by the
//!   same amount whether the sweep runs serially or with three workers:
//!   worker count is an execution detail, not a metric.
//!
//! This lives in its own integration-test binary, as **one** `#[test]`, on
//! purpose: the metric registry is process-global and `set_enabled` is a
//! process-global switch, so delta measurements must not race other tests
//! in the same process.

use cfd_core::app::{CfdApplication, Platform};
use cfd_core::stream::{StreamingConfig, StreamingSensor};
use cfd_dsp::detector::CyclostationaryDetector;
use cfd_dsp::scf::ScfParams;
use cfd_scenario::prelude::*;
use cfd_telemetry::MetricsSnapshot;

fn params() -> ScfParams {
    ScfParams::new(32, 7, 16).unwrap()
}

/// Histogram count in a snapshot (0 when the histogram does not exist yet).
fn hcount(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot.histogram(name).map_or(0, |h| h.count)
}

/// Every per-stage latency histogram the pipeline feeds on any sweep path.
const STAGES: [&str; 6] = [
    "dsp.fft.forward_ns",
    "dsp.scf.spectra_ns",
    "dsp.scf.accumulate_ns",
    "soc.correlate_ns",
    "core.decide.cfd_ns",
    "core.decide.cfd_soc_ns",
];

#[test]
fn telemetry_is_inert_by_default_and_covers_every_stage_when_enabled() {
    let len = params().samples_needed();
    let scenario = RadioScenario::preset("bpsk-awgn", len)
        .expect("built-in preset")
        .with_seed(29);
    let points = 2usize;
    let trials = 4usize;
    let sweep = SnrSweep::new(vec![-5.0, 5.0], trials).unwrap();
    // One shared H0 pass plus one H1 pass per SNR point.
    let observations = (points + 1) * trials;

    // A golden-model CFD plus a tiled-SoC session: between them they touch
    // every stage histogram in `STAGES`.
    let run_sweep = |workers: usize| {
        SweepBuilder::new(&scenario)
            .sweep(sweep.clone())
            .backend(CyclostationaryDetector::new(params(), 0.35, 1).unwrap())
            .backend(SessionRecipe::new(
                CfdApplication::new(32, 7, 16).unwrap(),
                &Platform::paper(),
                0.35,
                1,
            ))
            .workers(workers)
            .run()
            .unwrap()
    };

    // --- 1. No-op mode: timing off records nothing, counters advance ----
    assert!(
        !cfd_telemetry::enabled(),
        "timing must be off unless a binary opts in"
    );
    let before = cfd_telemetry::registry().snapshot();
    let table_disabled = run_sweep(1);
    let after = cfd_telemetry::registry().snapshot();
    for stage in STAGES {
        assert_eq!(
            hcount(&after, stage),
            hcount(&before, stage),
            "disabled telemetry must not record into {stage}"
        );
    }
    let trials_counter = |s: &MetricsSnapshot| s.counter("scenario.sweep.trials").unwrap_or(0);
    let spectra_counter = |s: &MetricsSnapshot| {
        s.counter("core.observation.spectra_computations")
            .unwrap_or(0)
    };
    assert_eq!(
        trials_counter(&after) - trials_counter(&before),
        observations as u64,
        "throughput counters stay live in no-op mode"
    );
    assert_eq!(
        spectra_counter(&after) - spectra_counter(&before),
        observations as u64,
        "cache counters stay live in no-op mode"
    );

    // --- 2. Enabled mode: one sweep fills every stage histogram ---------
    cfd_telemetry::set_enabled(true);
    let before = after;
    let table_serial = run_sweep(1);
    let mid = cfd_telemetry::registry().snapshot();
    for stage in STAGES {
        assert!(
            hcount(&mid, stage) > hcount(&before, stage),
            "enabled telemetry must record into {stage}"
        );
    }
    assert!(hcount(&mid, "scenario.sweep.run_ns") > hcount(&before, "scenario.sweep.run_ns"));

    // --- 3. Snapshot determinism: worker count is not a metric ----------
    let table_parallel = run_sweep(3);
    let after = cfd_telemetry::registry().snapshot();
    // The parallel engine additionally times per-cell work and queue waits.
    assert!(
        hcount(&after, "scenario.sweep.cell_ns") > hcount(&mid, "scenario.sweep.cell_ns"),
        "parallel sweeps time each work cell"
    );
    assert_eq!(
        trials_counter(&mid) - trials_counter(&before),
        trials_counter(&after) - trials_counter(&mid),
        "serial and parallel sweeps must count the same trials"
    );
    assert_eq!(
        spectra_counter(&mid) - spectra_counter(&before),
        spectra_counter(&after) - spectra_counter(&mid),
        "serial and parallel sweeps must compute the same spectra"
    );
    // And the tables themselves stay bit-identical across all three runs.
    assert_eq!(table_serial, table_parallel);
    assert_eq!(table_serial, table_disabled);

    // --- 4. Unit-stride instruments (PR 7): the sweep above ran the
    // segment-decomposed engine, so the segment-run counter advanced and
    // the per-scale accumulate histogram for its 15x15 grid exists -------
    let seg_counter = |s: &MetricsSnapshot| s.counter("dsp.scf.segment_runs").unwrap_or(0);
    assert!(
        seg_counter(&after) > seg_counter(&before),
        "the engine counts its contiguous segment passes"
    );
    assert!(
        hcount(&after, "dsp.scf.accumulate_ns.g15") > 0,
        "enabled telemetry records the per-scale accumulate histogram"
    );

    // --- 5. Threaded vs serial analytic SoC: identical counter deltas ---
    // The fan-out is an execution detail; every counter must advance by
    // the same amount whichever thread count ran, and only the
    // `soc.analytic.threads` gauge tells them apart.
    // The parallel sweep above lowered the process-wide analytic budget
    // (workers x soc_threads capping); lift it so the requested fan-out
    // is what actually runs.
    cfd_core::set_analytic_thread_budget(usize::MAX);
    let signal = cfd_dsp::signal::awgn(64 * 3, 1.0, 11);
    let soc_deltas = |threads: usize| {
        use tiled_soc::config::{ExecutionMode, SocConfig};
        let config = SocConfig::paper()
            .with_tiles(4)
            .with_mode(ExecutionMode::Analytic)
            .with_analytic_threads(threads);
        let mut soc = tiled_soc::soc::TiledSoc::new(config, 15, 64).unwrap();
        let before = cfd_telemetry::registry().snapshot();
        let run = soc.run(&signal, 3).unwrap();
        let after = cfd_telemetry::registry().snapshot();
        let deltas: Vec<(String, u64)> = after
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), value - before.counter(name).unwrap_or(0)))
            .collect();
        (run, deltas)
    };
    let (serial_run, serial_deltas) = soc_deltas(1);
    let (threaded_run, threaded_deltas) = soc_deltas(3);
    assert_eq!(
        serial_deltas, threaded_deltas,
        "thread count must not change any counter delta"
    );
    assert!(serial_deltas
        .iter()
        .any(|(name, delta)| name == "soc.runs.analytic" && *delta == 1));
    assert_eq!(serial_run.scf.as_slice(), threaded_run.scf.as_slice());
    let final_snapshot = cfd_telemetry::registry().snapshot();
    assert_eq!(
        final_snapshot.gauge("soc.analytic.threads"),
        Some(3.0),
        "the gauge reports the fan-out of the most recent analytic run"
    );

    // --- 6. The snapshot JSON document is schema-versioned --------------
    let json = after.to_json();
    assert!(json.starts_with(&format!(
        "{{\"schema\":{},",
        cfd_telemetry::METRICS_JSON_SCHEMA
    )));
    let doc = cfd_telemetry::json::parse(&json).expect("snapshot emits valid JSON");
    assert_eq!(
        doc.pointer(&["schema"]).and_then(|v| v.as_f64()),
        Some(cfd_telemetry::METRICS_JSON_SCHEMA as f64)
    );
    assert!(
        doc.pointer(&["histograms", "dsp.fft.forward_ns", "count"])
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
            > 0.0,
        "stage histograms survive the JSON round-trip"
    );

    // --- 7. Streaming instruments (PR 8): a StreamingSensor splits its
    // hops into incremental adds and exact refreshes. The split counters
    // and the ring-occupancy gauge are always-live; the decide/refresh
    // latency histograms record only when timing is enabled --------------
    let stream_params = ScfParams::new(32, 7, 4).unwrap();
    // 10 blocks at the default hop (= fft_len): 7 decisions, of which
    // hops 0, 3 and 6 are exact refreshes (R = 3) and 4 are incremental.
    let run_stream = || {
        let config = StreamingConfig::new(stream_params.clone()).with_refresh_interval(3);
        let detector = CyclostationaryDetector::new(stream_params.clone(), 0.35, 1).unwrap();
        let mut sensor = StreamingSensor::new(config, detector).unwrap();
        let samples = cfd_dsp::signal::awgn(stream_params.samples_needed() + 6 * 32, 1.0, 23);
        let decisions = sensor.push(&samples).unwrap();
        assert_eq!(decisions.len(), 7);
        assert_eq!(sensor.incremental_hops(), 4);
        assert_eq!(sensor.exact_refreshes(), 3);
    };
    let stream_counter =
        |s: &MetricsSnapshot, name: &str| s.counter(&format!("stream.{name}")).unwrap_or(0);

    cfd_telemetry::set_enabled(false);
    let before = cfd_telemetry::registry().snapshot();
    run_stream();
    let mid = cfd_telemetry::registry().snapshot();
    for hist in ["stream.decide_ns", "stream.refresh_ns"] {
        assert_eq!(
            hcount(&mid, hist),
            hcount(&before, hist),
            "disabled telemetry must not record into {hist}"
        );
    }
    assert_eq!(
        stream_counter(&mid, "incremental_hops") - stream_counter(&before, "incremental_hops"),
        4,
        "the hop-split counters stay live in no-op mode"
    );
    assert_eq!(
        stream_counter(&mid, "exact_refreshes") - stream_counter(&before, "exact_refreshes"),
        3
    );
    assert_eq!(
        mid.gauge("stream.ring_occupancy"),
        Some(4.0),
        "the ring holds a full window after warm-up"
    );

    cfd_telemetry::set_enabled(true);
    run_stream();
    let after = cfd_telemetry::registry().snapshot();
    assert_eq!(
        hcount(&after, "stream.decide_ns") - hcount(&mid, "stream.decide_ns"),
        7,
        "every decision hop is timed when telemetry is on"
    );
    assert_eq!(
        hcount(&after, "stream.refresh_ns") - hcount(&mid, "stream.refresh_ns"),
        3,
        "only exact-refresh hops feed the refresh histogram"
    );
    assert_eq!(
        stream_counter(&after, "incremental_hops") - stream_counter(&mid, "incremental_hops"),
        4
    );
    assert_eq!(
        stream_counter(&after, "exact_refreshes") - stream_counter(&mid, "exact_refreshes"),
        3
    );

    // --- 8. Service instruments (PR 9): a SensingScheduler counts hops,
    // decisions and drops always-live, reports its fleet shape through
    // gauges, and times hop processing / queue waits only when enabled ---
    // 3 channels x 6 hops of one 32-sample block each; window = 4 blocks,
    // so each channel decides on hops 4..6: 18 hops, 9 decisions, 0 drops.
    let service_params = ScfParams::new(32, 7, 4).unwrap();
    let run_service = || {
        let mut builder = cfd_core::SensingScheduler::builder(cfd_core::ServiceConfig::new(2));
        let log = cfd_core::service::DecisionLog::new();
        for channel in 0..3u64 {
            builder = builder.subscribe(cfd_core::ChannelSubscription::new(
                channel,
                StreamingConfig::new(service_params.clone()),
                CyclostationaryDetector::new(service_params.clone(), 0.35, 1).unwrap(),
                log.clone(),
            ));
        }
        let scheduler = builder.spawn().unwrap();
        let samples = cfd_dsp::signal::awgn(32, 1.0, 31);
        for _hop in 0..6 {
            for channel in 0..3u64 {
                scheduler.push(channel, &samples).unwrap();
            }
        }
        let report = scheduler.join().unwrap();
        assert_eq!((report.hops, report.decisions, report.drops), (18, 9, 0));
        assert_eq!(log.len(), 9);
    };
    let service_counter =
        |s: &MetricsSnapshot, name: &str| s.counter(&format!("service.{name}")).unwrap_or(0);

    cfd_telemetry::set_enabled(false);
    let before = cfd_telemetry::registry().snapshot();
    run_service();
    let mid = cfd_telemetry::registry().snapshot();
    for hist in ["service.hop_ns", "service.queue_wait_ns"] {
        assert_eq!(
            hcount(&mid, hist),
            hcount(&before, hist),
            "disabled telemetry must not record into {hist}"
        );
    }
    assert_eq!(
        service_counter(&mid, "hops") - service_counter(&before, "hops"),
        18,
        "the service throughput counters stay live in no-op mode"
    );
    assert_eq!(
        service_counter(&mid, "decisions") - service_counter(&before, "decisions"),
        9
    );
    assert_eq!(
        service_counter(&mid, "drops") - service_counter(&before, "drops"),
        0,
        "Block backpressure must not shed"
    );
    assert_eq!(
        (mid.gauge("service.channels"), mid.gauge("service.workers")),
        (Some(3.0), Some(2.0)),
        "the fleet-shape gauges report the most recent spawn"
    );
    assert_eq!(
        mid.gauge("service.queue_occupancy"),
        Some(0.0),
        "a joined scheduler leaves its ingress queues drained"
    );

    cfd_telemetry::set_enabled(true);
    run_service();
    let after = cfd_telemetry::registry().snapshot();
    assert_eq!(
        hcount(&after, "service.hop_ns") - hcount(&mid, "service.hop_ns"),
        18,
        "every processed hop is timed when telemetry is on"
    );
    assert!(
        hcount(&after, "service.queue_wait_ns") > hcount(&mid, "service.queue_wait_ns"),
        "workers time the waits on their shard queues"
    );
    assert_eq!(
        service_counter(&after, "decisions") - service_counter(&mid, "decisions"),
        9
    );
    // Scheduler spawns lowered the process-wide analytic budget; restore
    // it so this test leaves the global where it found it.
    cfd_core::set_analytic_thread_budget(usize::MAX);
}
