//! Cross-crate integration tests: every implementation layer of the DSCF —
//! golden model, systolic array, folded array, single Montium tile, full
//! tiled SoC (lockstep and threaded) — must agree on the same input, and the
//! end-to-end sensing pipeline must make correct decisions on top of the
//! platform result.

use cfd_core::prelude::*;
use cfd_dsp::prelude::*;
use cfd_dsp::scf::{block_spectra, dscf_reference};
use cfd_mapping::folding::FoldedArray;
use cfd_mapping::systolic::SystolicArray;
use tiled_soc::config::{ExecutionMode, SocConfig};
use tiled_soc::soc::TiledSoc;

fn licensed_user_signal(params: &ScfParams, snr_db: f64, seed: u64) -> Vec<Cplx> {
    SignalBuilder::new(params.samples_needed())
        .modulation(SymbolModulation::Bpsk)
        .samples_per_symbol(4)
        .snr_db(snr_db)
        .seed(seed)
        .build()
        .expect("valid signal")
        .samples
}

#[test]
fn all_implementations_agree_on_the_same_dscf() {
    let params = ScfParams::new(64, 15, 4).unwrap();
    let signal = licensed_user_signal(&params, 5.0, 11);
    let reference = dscf_reference(&signal, &params).unwrap();
    let spectra = block_spectra(&signal, &params).unwrap();

    // Step-1 systolic array.
    let mut systolic = SystolicArray::new(params.max_offset, params.fft_len);
    let (systolic_result, _) = systolic.run(&spectra);
    assert!(systolic_result.max_abs_difference(&reference) < 1e-9);

    // Step-1 folded array (4 cores).
    let mut folded = FoldedArray::new(params.max_offset, params.fft_len, 4).unwrap();
    let (folded_result, _) = folded.run(&spectra);
    assert!(folded_result.max_abs_difference(&reference) < 1e-9);

    // Full tiled SoC, lockstep.
    let mut lockstep =
        TiledSoc::new(SocConfig::paper(), params.max_offset, params.fft_len).unwrap();
    let lockstep_run = lockstep.run(&signal, params.num_blocks).unwrap();
    assert!(lockstep_run.scf.max_abs_difference(&reference) < 1e-9);

    // Full tiled SoC, threaded (crossbeam channels between tiles).
    let mut threaded = TiledSoc::new(
        SocConfig::paper().with_mode(ExecutionMode::Threaded),
        params.max_offset,
        params.fft_len,
    )
    .unwrap();
    let threaded_run = threaded.run(&signal, params.num_blocks).unwrap();
    assert!(threaded_run.scf.max_abs_difference(&lockstep_run.scf) < 1e-12);
}

#[test]
fn platform_results_are_identical_for_any_tile_count() {
    let params = ScfParams::new(32, 7, 3).unwrap();
    let signal = licensed_user_signal(&params, 0.0, 5);
    let reference = dscf_reference(&signal, &params).unwrap();
    for tiles in [1usize, 2, 3, 4, 5, 8] {
        let mut soc = TiledSoc::new(
            SocConfig::paper().with_tiles(tiles),
            params.max_offset,
            params.fft_len,
        )
        .unwrap();
        let run = soc.run(&signal, params.num_blocks).unwrap();
        assert!(
            run.scf.max_abs_difference(&reference) < 1e-9,
            "tiles = {tiles}"
        );
    }
}

#[test]
fn end_to_end_sensing_on_the_platform_detects_and_clears() {
    let application = CfdApplication::new(32, 7, 64).unwrap();
    let mut sensor = SpectrumSensor::new(application, &Platform::paper(), 0.35, 1).unwrap();
    let n = sensor.samples_per_decision();
    let params = ScfParams::new(32, 7, 64).unwrap();
    assert_eq!(n, params.samples_needed());

    let busy = licensed_user_signal(&params, 5.0, 3);
    let report = sensor.sense(&busy).unwrap();
    assert!(report.occupied());

    let idle = SignalBuilder::new(n)
        .noise_only()
        .seed(4)
        .build()
        .unwrap()
        .samples;
    let report = sensor.sense(&idle).unwrap();
    assert!(!report.occupied());
}

#[test]
fn quantised_platform_stays_close_to_the_golden_model() {
    // With the Q15 datapath enabled the platform result is no longer exact,
    // but for well-scaled inputs it stays within the quantisation budget.
    use montium_sim::MontiumConfig;
    let params = ScfParams::new(32, 7, 4).unwrap();
    // Keep the signal small so the FFT output stays within [-1, 1) after the
    // 1/N block-floating scaling of the quantised FFT.
    let signal: Vec<Cplx> = licensed_user_signal(&params, 10.0, 9)
        .into_iter()
        .map(|x| x * 0.05)
        .collect();
    let reference = dscf_reference(&signal, &params).unwrap();
    let config = SocConfig::paper().with_tile_config(MontiumConfig::paper().with_q15());
    let mut soc = TiledSoc::new(config, params.max_offset, params.fft_len).unwrap();
    let run = soc.run(&signal, params.num_blocks).unwrap();
    // The quantised FFT scales spectra by 1/K, so the DSCF scales by 1/K^2;
    // compare against the equally-scaled reference.
    let mut scaled_reference = reference.clone();
    scaled_reference.scale(1.0 / (params.fft_len * params.fft_len) as f64);
    let difference = run.scf.max_abs_difference(&scaled_reference);
    let peak = scaled_reference.max_magnitude();
    assert!(
        difference < 0.05 * peak.max(1e-6),
        "difference {difference} vs peak {peak}"
    );
}

#[test]
fn communication_is_t_times_slower_than_computation_on_the_platform() {
    // The paper's Section 4 justification for ignoring inter-core
    // communication: it happens at a rate T times lower than the MACs.
    let params = ScfParams::new(64, 15, 2).unwrap();
    let signal = licensed_user_signal(&params, 0.0, 13);
    let mut soc = TiledSoc::new(SocConfig::paper(), params.max_offset, params.fft_len).unwrap();
    let run = soc.run(&signal, params.num_blocks).unwrap();
    let t = soc.folding().tasks_per_core as f64;
    let macs_critical_tile = run.per_tile_cycles[0].multiply_accumulate as f64 / 3.0;
    let boundaries = (soc.num_tiles() - 1) as f64;
    let transfers_per_boundary_per_flow = run.inter_tile_transfers as f64 / boundaries / 2.0;
    let ratio = macs_critical_tile / transfers_per_boundary_per_flow;
    assert!(
        (ratio - t).abs() / t < 0.1,
        "compute/communication ratio {ratio} should be about T = {t}"
    );
}
