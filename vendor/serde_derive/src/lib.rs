//! Offline stand-in for `serde_derive`.
//!
//! Emits empty impls of the marker traits defined by the sibling `serde`
//! stand-in crate. The parser is deliberately tiny: it scans the item's
//! token stream for the `struct`/`enum`/`union` keyword and takes the next
//! identifier as the type name, then captures the generic parameter names
//! (lifetime or type) so generic containers also derive cleanly.

use proc_macro::{TokenStream, TokenTree};

/// Derives the `serde::Serialize` marker for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let generics = item.generics_decl();
    let args = item.generics_args();
    let bounds = item.bounds("::serde::Serialize");
    format!(
        "impl{generics} ::serde::Serialize for {}{args} {bounds} {{}}",
        item.name
    )
    .parse()
    .expect("generated impl must parse")
}

/// Derives the `serde::Deserialize` marker for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let generics = item.generics_decl_with_de();
    let args = item.generics_args();
    let bounds = item.bounds("for<'any> ::serde::Deserialize<'any>");
    format!(
        "impl{generics} ::serde::Deserialize<'de> for {}{args} {bounds} {{}}",
        item.name
    )
    .parse()
    .expect("generated impl must parse")
}

struct Item {
    name: String,
    /// Generic parameter names in declaration order, e.g. `["'a", "T"]`.
    params: Vec<String>,
}

impl Item {
    fn generics_decl(&self) -> String {
        if self.params.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.params.join(", "))
        }
    }

    fn generics_decl_with_de(&self) -> String {
        let mut params = vec!["'de".to_string()];
        params.extend(self.params.iter().cloned());
        format!("<{}>", params.join(", "))
    }

    fn generics_args(&self) -> String {
        self.generics_decl()
    }

    fn bounds(&self, bound: &str) -> String {
        let type_params: Vec<&String> = self
            .params
            .iter()
            .filter(|p| !p.starts_with('\''))
            .collect();
        if type_params.is_empty() {
            String::new()
        } else {
            let clauses: Vec<String> = type_params
                .iter()
                .map(|p| format!("{p}: {bound}"))
                .collect();
            format!("where {}", clauses.join(", "))
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Find the `struct` / `enum` / `union` keyword (skipping attributes,
    // visibility and doc comments, which arrive as ordinary tokens).
    while i < tokens.len() {
        if let TokenTree::Ident(ident) = &tokens[i] {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name after item keyword, got {other:?}"),
    };
    let params = parse_generic_params(&tokens[i + 2..]);
    Item { name, params }
}

/// Extracts the parameter *names* from a `<...>` generic list (bounds and
/// defaults are dropped; const generics are not supported by this stand-in).
fn parse_generic_params(tokens: &[TokenTree]) -> Vec<String> {
    match tokens.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut expecting_name = true;
    let mut pending_lifetime = false;
    for token in &tokens[1..] {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expecting_name = true;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expecting_name => {
                pending_lifetime = true;
            }
            TokenTree::Ident(ident) if depth == 1 && expecting_name => {
                if pending_lifetime {
                    params.push(format!("'{ident}"));
                    pending_lifetime = false;
                } else {
                    params.push(ident.to_string());
                }
                expecting_name = false;
            }
            _ => {}
        }
    }
    params
}
