//! Offline stand-in for the `serde` facade crate.
//!
//! The build environment for this repository has no network access, so the
//! real `serde` cannot be fetched from crates.io. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as a forward-compatibility marker —
//! nothing actually serialises data yet — so this crate provides the two
//! trait names and (behind the `derive` feature) the matching derive macros,
//! which emit empty impls.
//!
//! When network access becomes available, deleting `vendor/` and switching
//! the workspace dependency back to crates.io is a drop-in change: every
//! type that derives these traits uses only derivable field types.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialised.
///
/// The real `serde::Serialize` has a `serialize` method driven by a
/// `Serializer`; this stand-in keeps only the trait name so derives and
/// bounds compile identically.
pub trait Serialize {}

/// Marker for types that can be deserialised from borrowed data with
/// lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserialisable from any lifetime (mirrors
/// `serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl Serialize for str {}
impl<T: Serialize> Serialize for [T] {}
