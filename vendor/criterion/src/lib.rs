//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple but honest measurement loop: warm up, then time batches of
//! iterations until the configured measurement time (capped) elapses, and
//! print the mean time per iteration. Statistical analysis, outlier
//! rejection and HTML reports of the real crate are intentionally absent;
//! the printed numbers are still comparable run-to-run on the same machine.
//!
//! Like the real crate, `cargo bench -- --test` runs every benchmark body
//! exactly once with no warm-up and no statistics — the smoke mode CI uses
//! to keep bench bodies exercised, not merely compiled.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.to_string(),
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (used here as a minimum iteration
    /// count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finishes the group (no-op in this stand-in; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// `true` when the process was started in test mode (`cargo bench -- --test`):
/// run every benchmark body once, skip warm-up and measurement entirely.
/// Other harness flags cargo or the user may pass (`--bench`, filters) are
/// ignored, mirroring how this stand-in treats the rest of the CLI.
fn test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    min_samples: usize,
    f: &mut F,
) {
    if test_mode() {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test: {label:<50} ok (1 iter, --test mode)");
        return;
    }
    // Warm-up: run single iterations until the warm-up budget elapses, and
    // use the observed cost to size measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut per_iter = Duration::from_nanos(0);
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed;
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let batch =
        (measurement.as_nanos() / per_iter.as_nanos().max(1) / 10).clamp(1, 1_000_000) as u64;

    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    let deadline = Instant::now() + measurement.min(Duration::from_secs(3));
    while Instant::now() < deadline || (total_iters as usize) < min_samples {
        let mut b = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += batch;
        total_time += b.elapsed;
        if total_iters >= 100_000_000 {
            break;
        }
    }
    let ns_per_iter = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench: {label:<50} {ns_per_iter:>14.1} ns/iter ({total_iters} iters)");
}

/// Declares a function that runs a list of benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
