//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Provides the subset of the proptest API this workspace's tests use:
//! the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert!`/
//! `prop_assert_eq!` assertions.
//!
//! Differences from the real crate, by design: cases are generated from a
//! fixed deterministic seed (no `PROPTEST_*` environment handling, no
//! failure persistence) and failing cases are **not shrunk** — the failing
//! inputs are reported as generated.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `Vec<T>` with a fixed or ranged length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Inclusive minimum and exclusive maximum length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        assert!(min_len < max_len, "empty length range");
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.min_len + 1 == self.max_len {
                self.min_len
            } else {
                rng.gen_range(self.min_len..self.max_len)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Creates the deterministic RNG used for a property's cases.
    pub fn deterministic_rng(property_name: &str) -> StdRng {
        // Stable per-property seed so failures reproduce across runs.
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in property_name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(seed)
    }
}

/// The common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Defines `#[test]` functions over randomly generated inputs (mirrors
/// `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}
