//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access; the workspace only uses
//! `crossbeam::channel::{unbounded, Sender, Receiver, TryRecvError}`, so
//! this crate provides exactly that: an unbounded MPMC channel built on
//! `Mutex<VecDeque>` + `Condvar`. Semantics match crossbeam for the
//! operations used here (clonable senders *and* receivers, disconnect
//! detection); throughput is of course far below the real lock-free
//! implementation, which is irrelevant for the simulator's traffic.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Appends a message to the channel.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders are dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] if the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .expect("channel mutex poisoned");
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if nothing is queued,
        /// [`TryRecvError::Disconnected`] if additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect. The mutex must be held while
                // notifying — otherwise a receiver that has checked
                // `senders > 0` but not yet parked in `wait` would miss
                // this wakeup and sleep forever.
                let _guard = self
                    .shared
                    .queue
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..1000 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            handle.join().unwrap();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cloned_receivers_share_the_stream() {
            let (tx, rx1) = unbounded::<u32>();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx1.recv().unwrap(), 1);
            assert_eq!(rx2.recv().unwrap(), 2);
        }
    }
}
