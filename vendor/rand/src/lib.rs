//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this crate reimplements
//! the (small) part of the `rand 0.8` API surface the workspace uses, with
//! the same module paths and trait shapes so switching back to crates.io is
//! a drop-in change:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — here a xoshiro256\*\* generator seeded via
//!   SplitMix64 (deterministic per seed, good statistical quality; **not**
//!   the ChaCha12 generator the real `StdRng` uses, so streams differ from
//!   upstream, but all in-repo reproducibility guarantees hold),
//! * [`distributions::Distribution`] and the [`distributions::Standard`]
//!   distribution for `bool`/`f64`/`u64`,
//! * `gen_range` over half-open `f64`/`u64`/`usize`/`i64` ranges.

#![warn(missing_docs)]

pub use distributions::Distribution;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* with SplitMix64
    /// seed expansion. Deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions over random values.
pub mod distributions {
    use super::Rng;

    /// A distribution that can produce values of type `T` given a source of
    /// randomness.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over `[0, 1)` for
    /// floats, uniform over all values for integers and `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Uniform range sampling (mirrors `rand::distributions::uniform`).
    pub mod uniform {
        use super::super::Rng;
        use super::{Distribution, Standard};

        /// A range that can be sampled uniformly.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty range");
                let u: f64 = Standard.sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Keep the half-open contract if rounding lands on `end`.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),* $(,)?) => {
                $(
                    impl SampleRange<$t> for core::ops::Range<$t> {
                        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                            assert!(self.start < self.end, "empty range");
                            let span = (self.end as i128 - self.start as i128) as u128;
                            // Multiply-shift bounded sampling (Lemire's
                            // method without the rejection step): some
                            // values are over-represented by ~span/2^64,
                            // which is negligible for the span sizes used
                            // in this workspace but NOT exactly uniform.
                            let hi = ((rng.next_u64() as u128)
                                .wrapping_mul(span)
                                >> 64) as i128;
                            (self.start as i128 + hi) as $t
                        }
                    }
                )*
            };
        }

        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}
